#pragma once
// Fusion-group pipeline simulator. Two views of the same architecture:
//
//  * run(): functional simulation — rows stream through chained engines and
//    FIFOs exactly as in the generated DATAFLOW design; the result is
//    compared against the reference executor in tests.
//
//  * simulate_schedule(): timing simulation — a row-level dependence
//    recurrence that predicts the group's makespan (pipeline fill + steady
//    state) from per-layer row costs and DDR bandwidth. Used to validate
//    the optimizer's analytic latency model.

#include <atomic>
#include <memory>

#include "arch/engines.h"
#include "fault/fault.h"
#include "fault/protect.h"
#include "fpga/engine_model.h"
#include "nn/network.h"
#include "nn/reference.h"

namespace hetacc::arch {

/// Per-layer algorithm selection for a pipeline.
struct LayerChoice {
  fpga::ConvAlgo algo = fpga::ConvAlgo::kConventional;
  int wino_m = 4;
  NumericMode mode;  ///< float by default
};

struct PipelineStats {
  std::vector<std::size_t> fifo_max_occupancy;  ///< per inter-layer channel
  long long total_steps = 0;
};

/// Per-layer derived constants — transformed Winograd filter planes, packed
/// GEMM weight panels, int8 quantized constants — index-aligned with the
/// pipeline's layer choices (null where a layer has none). Immutable once
/// built; pipelines hold it by shared_ptr so replicas serving the same
/// (model, strategy, datapath) alias one copy instead of duplicating the
/// dominant memory cost. serve::PrepackCache keys and refcounts these
/// bundles across a fleet.
struct PrepackBundle {
  std::vector<std::shared_ptr<const kernels::WinogradPlan>> wino;
  std::vector<std::shared_ptr<const kernels::PackedLhsF32>> packed;
  std::vector<std::shared_ptr<const Int8ConvConstants>> int8;

  /// Resident bytes of every constant held (panel blocks, transform planes,
  /// requant tables) — what one more private replica copy would cost.
  [[nodiscard]] long long resident_bytes() const;

  /// CRC-32 over every resident constant byte, in the fixed layer-major walk
  /// resident_bytes() uses. serve::PrepackCache records it at insert and
  /// re-checks it on lease, so a bit flip in the shared resident copy is
  /// caught before a spinning-up replica adopts the bundle.
  [[nodiscard]] std::uint32_t content_crc() const;
};

class FusionPipeline {
 public:
  /// `net` must start with an input layer; engines are built for layers
  /// [1, net.size()). `choices` is index-aligned with those layers (empty =
  /// all-conventional float).
  FusionPipeline(const nn::Network& net, const nn::WeightStore& ws,
                 std::vector<LayerChoice> choices = {});

  /// Warm construction: adopts a peer's derived constants instead of
  /// re-deriving them. The caller guarantees `prepack` was derived for an
  /// identical (net, weights, choices) triple — replicas of the same fleet
  /// rung — and only the vector sizes are validated. Spin-up skips the
  /// dominant pack/transform work, and the two pipelines provably alias:
  /// shared_prepack() returns pointer-equal bundles.
  FusionPipeline(const nn::Network& net, const nn::WeightStore& ws,
                 std::vector<LayerChoice> choices,
                 std::shared_ptr<const PrepackBundle> prepack);

  /// Streams one image through the pipeline; returns the final output.
  /// Engines are reset (not rebuilt) between calls, so per-layer constants
  /// — transformed Winograd filters, packed GEMM weight panels — are
  /// derived once in the constructor and reused for every image.
  [[nodiscard]] nn::Tensor run(const nn::Tensor& input);

  /// Streams a batch of images, parallelized across images (`threads`
  /// follows the OptimizerOptions convention: 1 = serial, 0 = all cores,
  /// n = n). Each worker streams its share of the batch through its own
  /// engine set; the cached per-layer constants are shared by all of them,
  /// and results are identical to calling run() per image in order.
  /// stats() is not updated by batch runs.
  [[nodiscard]] std::vector<nn::Tensor> run_batch(
      const std::vector<nn::Tensor>& inputs, int threads = 0) const;

  [[nodiscard]] const PipelineStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t engine_count() const { return engines_.size(); }
  /// Engine for layer i+1. Merge layers (concat / eltwise-add) have no
  /// stream engine — they are computed on whole tensors between streams —
  /// so this throws for them; check has_engine() first on DAG nets.
  [[nodiscard]] const StreamEngine& engine(std::size_t i) const {
    if (!engines_.at(i)) {
      throw std::logic_error("FusionPipeline: merge layers have no engine");
    }
    return *engines_.at(i);
  }
  [[nodiscard]] bool has_engine(std::size_t i) const {
    return engines_.at(i) != nullptr;
  }

  /// Full recovery hook for the serving layer's retry-with-reload path:
  /// rebuilds the engine set and restores golden per-layer constants.
  /// Idempotent — calling it twice leaves the same state as calling it once.
  /// A clean pipeline (no fault plan) keeps its current bundle: re-deriving
  /// from the golden weight store would be value-identical, so skipping it
  /// preserves both the spin-up cost and any aliasing a fleet's prepack
  /// cache established. With a fault plan installed the re-derive is
  /// mandatory — the same deterministic SEUs re-strike fresh resident copies
  /// (and protection recovers them if enabled) — and it lands in a *new*
  /// private bundle, so peers sharing the old one are never invalidated.
  void reset();

  /// The pipeline's derived-constant bundle. Two pipelines built from the
  /// same (model, strategy) alias iff these are pointer-equal. Re-derives
  /// (reset() under a fault plan, install/clear_fault_plan) swap in a fresh
  /// bundle rather than mutating the shared one, so a peer's handle stays
  /// valid for as long as the peer holds it.
  [[nodiscard]] std::shared_ptr<const PrepackBundle> shared_prepack() const {
    return prepack_;
  }

  /// Cooperative cancellation hook: while `token` is non-null, run() /
  /// run_batch() poll it once per fed input row and abandon the stream with
  /// a ServeError(kCancelled) when it reads true. The token is owned by the
  /// caller (the serving runtime flips it when a request's deadline passes
  /// mid-flight); pass nullptr to detach.
  void set_cancel_token(const std::atomic<bool>* token) { cancel_ = token; }

  /// Installs a fault plan (and optionally the hardening config). Resident
  /// weight-panel faults are injected immediately: per-layer constants are
  /// re-derived from bit-flipped filter copies; with protection enabled the
  /// CRC / Winograd-checksum detectors fire here and recover by reloading
  /// the golden copy. FIFO / line-buffer faults are injected while streaming.
  /// With no plan installed (the default) every hook is a null check and the
  /// simulator output is byte-identical to the unhooked design.
  void install_fault_plan(const fault::FaultPlan& plan,
                          const fault::ProtectionConfig& protect = {});
  /// Removes the plan and restores the golden per-layer constants.
  void clear_fault_plan();
  [[nodiscard]] bool fault_plan_installed() const {
    return injector_ != nullptr;
  }
  /// Injection/detection counters accumulated since install (or the last
  /// FaultInjector::reset_stats()).
  [[nodiscard]] fault::FaultStats fault_stats() const;

 private:
  [[nodiscard]] std::vector<std::unique_ptr<StreamEngine>> build_engine_set()
      const;
  /// Dispatches to the chained-FIFO path on chain nets and the graph walk
  /// (per-layer streams + tensor merges) otherwise.
  nn::Tensor run_any(std::vector<std::unique_ptr<StreamEngine>>& engines,
                     const nn::Tensor& input, PipelineStats* stats) const;
  nn::Tensor run_with(std::vector<std::unique_ptr<StreamEngine>>& engines,
                      const nn::Tensor& input, PipelineStats* stats) const;
  nn::Tensor run_dag(std::vector<std::unique_ptr<StreamEngine>>& engines,
                     const nn::Tensor& input, PipelineStats* stats) const;
  nn::Tensor stream_layer(StreamEngine& eng, const nn::Tensor& input,
                          const nn::Shape& out_shape, PipelineStats* stats,
                          std::size_t engine_idx) const;

  void derive_layer_constants();
  [[noreturn]] void report_stall(
      const std::vector<std::unique_ptr<StreamEngine>>& engines,
      const std::vector<RowFifo>& fifos) const;

  nn::Network net_;
  nn::WeightStore ws_;
  std::vector<LayerChoice> choices_;
  /// Per-layer constants shared across engine sets — and, when adopted via
  /// the warm constructor, across whole pipelines.
  std::shared_ptr<const PrepackBundle> prepack_;
  std::vector<std::unique_ptr<StreamEngine>> engines_;
  PipelineStats stats_;
  std::unique_ptr<fault::FaultInjector> injector_;
  fault::ProtectionConfig protect_;
  const std::atomic<bool>* cancel_ = nullptr;
};

/// Result of the row-level timing recurrence.
struct ScheduleResult {
  long long makespan_cycles = 0;        ///< load -> ... -> store completion
  long long first_output_cycle = 0;     ///< pipeline fill observed
  std::vector<long long> layer_finish;  ///< completion time per layer
};

/// Predicts the makespan of fusing `net`'s layers [first, last] with the
/// given implementations, modeling row-granularity dataflow: each layer's
/// row i starts once its producer has delivered the rows the window needs
/// and the layer's own previous row is done. DDR feeds the first layer and
/// drains the last at the device bandwidth.
[[nodiscard]] ScheduleResult simulate_schedule(
    const nn::Network& net, std::size_t first, std::size_t last,
    const std::vector<fpga::Implementation>& impls, const fpga::Device& dev);

}  // namespace hetacc::arch
