#include "arch/line_buffer.h"

#include <algorithm>

namespace hetacc::arch {

void CircularLineBuffer::push_row(const std::vector<float>& row) {
  if (static_cast<int>(row.size()) != channels_ * width_) {
    throw std::invalid_argument("push_row: wrong row size");
  }
  const auto line = static_cast<std::size_t>(next_row_ % lines_);
  float* dst = data_.data() + line * channels_ * width_;
  std::copy(row.begin(), row.end(), dst);
  if (fault_) {
    fault_->maybe_corrupt_row(fault::FaultSite::kLineBuffer, fault_stream_,
                              static_cast<std::uint64_t>(next_row_), dst,
                              static_cast<std::size_t>(channels_) * width_);
  }
  ++next_row_;
}

float CircularLineBuffer::at(int channel, long long row, int col) const {
  if (channel < 0 || channel >= channels_ || col < 0 || col >= width_) {
    throw std::out_of_range("CircularLineBuffer::at: bad channel/col");
  }
  if (!contains(row)) {
    throw std::out_of_range(
        "CircularLineBuffer::at: row " + std::to_string(row) +
        " not resident (window [" + std::to_string(oldest_row()) + ", " +
        std::to_string(next_row_) + "))");
  }
  const auto line = static_cast<std::size_t>(row % lines_);
  return data_[(line * channels_ + channel) * width_ + col];
}

const float* CircularLineBuffer::row_ptr(int channel, long long row) const {
  if (channel < 0 || channel >= channels_) {
    throw std::out_of_range("CircularLineBuffer::row_ptr: bad channel");
  }
  if (!contains(row)) {
    throw std::out_of_range(
        "CircularLineBuffer::row_ptr: row " + std::to_string(row) +
        " not resident (window [" + std::to_string(oldest_row()) + ", " +
        std::to_string(next_row_) + "))");
  }
  const auto line = static_cast<std::size_t>(row % lines_);
  return data_.data() + (line * channels_ + channel) * width_;
}

void CircularLineBuffer::reset() {
  next_row_ = 0;
  std::fill(data_.begin(), data_.end(), 0.0f);
}

}  // namespace hetacc::arch
