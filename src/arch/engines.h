#pragma once
// Streaming layer engines: row-in/row-out functional models of the hardware
// units the code generator emits. Each engine owns a circular line buffer
// (paper §4.2) and implements one layer kind; chained through RowFifos they
// form the fusion pipeline of Fig. 2.

#include <memory>
#include <optional>

#include "algo/winograd_conv.h"
#include "arch/fifo.h"
#include "arch/line_buffer.h"
#include "kernels/gemm.h"
#include "kernels/wino_gemm.h"
#include "nn/layer.h"
#include "nn/weights.h"

namespace hetacc::arch {

/// Numeric mode of an engine's datapath. `out_frac < 0` keeps the engine in
/// float mode; otherwise inputs and outputs are quantized to Q(frac) 16-bit
/// grids, modeling the fixed datapath of the generated hardware. With `i8`
/// set the engine instead runs the int8 datapath: activations live on the
/// asymmetric i8 grid (scale, zero-point) below, conv engines compute in
/// exact i8 x i8 -> i32 with requantize-on-writeback, and the frac fields
/// are ignored.
struct NumericMode {
  int in_frac = -1;
  int out_frac = -1;
  bool i8 = false;
  float in_scale = 1.0f;
  std::int32_t in_zp = 0;
  float out_scale = 1.0f;
  std::int32_t out_zp = 0;
  [[nodiscard]] bool fixed() const { return out_frac >= 0 && !i8; }
  [[nodiscard]] bool int8() const { return i8; }
};

/// Per-layer constants of an int8 conv engine, derived once from the float
/// filters (after any fault-protection CRC verification — see
/// arch/pipeline.cpp) and shared across engine instances: the packed i8
/// weight panels, the requantization scales, the folded i32 bias, and the
/// input-grid padding code.
struct Int8ConvConstants {
  kernels::PackedLhsI8 packed;
  std::vector<float> requant;     ///< per out-channel writeback scales
  std::vector<std::int32_t> bias; ///< zp-corrected i32 bias
  std::int8_t pad_value = 0;      ///< i8 code of real 0.0 on the input grid
};

/// Derives the int8 constants of a conv layer from its float weights and the
/// activation grids in `mode` (which must have i8 set).
[[nodiscard]] std::shared_ptr<const Int8ConvConstants>
make_int8_conv_constants(const nn::Layer& layer, const nn::ConvWeights& w,
                         const NumericMode& mode);

class StreamEngine {
 public:
  virtual ~StreamEngine() = default;

  /// Performs at most one unit of work (emit one output row, or absorb one
  /// input row). Returns true iff progress was made.
  virtual bool step(RowFifo& in, RowFifo& out) = 0;
  /// True once every output row has been emitted.
  [[nodiscard]] virtual bool done() const = 0;
  /// Frame boundary: clears streaming state (line buffers, row counters) so
  /// the engine can process the next image. Per-layer constants — packed
  /// weight panels, transformed filters — survive the reset; that is the
  /// point (the seed re-derived them per image).
  virtual void reset() = 0;
  [[nodiscard]] virtual const nn::Layer& layer() const = 0;
  /// Line-buffer rows this engine instantiates (for resource cross-checks).
  [[nodiscard]] virtual int line_buffer_lines() const = 0;
  /// Attaches a fault injector to the engine's internal storage (line
  /// buffer). `stream` identifies the engine as an injection stream. Default
  /// is a no-op: engines without buffered state have nothing to corrupt.
  virtual void set_fault_injector(const fault::FaultInjector* inj,
                                  std::uint64_t stream) {
    (void)inj;
    (void)stream;
  }
};

/// Factory covering all fusable layer kinds. `wino` selects the Winograd
/// algorithm for conv layers (nullopt = conventional). `wino_plan` /
/// `packed_weights` optionally supply the per-layer constants (shared across
/// engine instances, e.g. by FusionPipeline); when null they are derived
/// from `weights` at construction.
[[nodiscard]] std::unique_ptr<StreamEngine> make_engine(
    const nn::Layer& layer, const nn::ConvWeights* weights,
    std::optional<algo::WinogradTransform> wino, NumericMode mode,
    std::shared_ptr<const kernels::WinogradPlan> wino_plan = nullptr,
    std::shared_ptr<const kernels::PackedLhsF32> packed_weights = nullptr,
    std::shared_ptr<const Int8ConvConstants> int8_consts = nullptr);

}  // namespace hetacc::arch
