#pragma once
// Streaming layer engines: row-in/row-out functional models of the hardware
// units the code generator emits. Each engine owns a circular line buffer
// (paper §4.2) and implements one layer kind; chained through RowFifos they
// form the fusion pipeline of Fig. 2.

#include <memory>
#include <optional>

#include "algo/winograd_conv.h"
#include "arch/fifo.h"
#include "arch/line_buffer.h"
#include "kernels/gemm.h"
#include "kernels/wino_gemm.h"
#include "nn/layer.h"
#include "nn/weights.h"

namespace hetacc::arch {

/// Numeric mode of an engine's datapath. `out_frac < 0` keeps the engine in
/// float mode; otherwise inputs and outputs are quantized to Q(frac) 16-bit
/// grids, modeling the fixed datapath of the generated hardware.
struct NumericMode {
  int in_frac = -1;
  int out_frac = -1;
  [[nodiscard]] bool fixed() const { return out_frac >= 0; }
};

class StreamEngine {
 public:
  virtual ~StreamEngine() = default;

  /// Performs at most one unit of work (emit one output row, or absorb one
  /// input row). Returns true iff progress was made.
  virtual bool step(RowFifo& in, RowFifo& out) = 0;
  /// True once every output row has been emitted.
  [[nodiscard]] virtual bool done() const = 0;
  /// Frame boundary: clears streaming state (line buffers, row counters) so
  /// the engine can process the next image. Per-layer constants — packed
  /// weight panels, transformed filters — survive the reset; that is the
  /// point (the seed re-derived them per image).
  virtual void reset() = 0;
  [[nodiscard]] virtual const nn::Layer& layer() const = 0;
  /// Line-buffer rows this engine instantiates (for resource cross-checks).
  [[nodiscard]] virtual int line_buffer_lines() const = 0;
  /// Attaches a fault injector to the engine's internal storage (line
  /// buffer). `stream` identifies the engine as an injection stream. Default
  /// is a no-op: engines without buffered state have nothing to corrupt.
  virtual void set_fault_injector(const fault::FaultInjector* inj,
                                  std::uint64_t stream) {
    (void)inj;
    (void)stream;
  }
};

/// Factory covering all fusable layer kinds. `wino` selects the Winograd
/// algorithm for conv layers (nullopt = conventional). `wino_plan` /
/// `packed_weights` optionally supply the per-layer constants (shared across
/// engine instances, e.g. by FusionPipeline); when null they are derived
/// from `weights` at construction.
[[nodiscard]] std::unique_ptr<StreamEngine> make_engine(
    const nn::Layer& layer, const nn::ConvWeights* weights,
    std::optional<algo::WinogradTransform> wino, NumericMode mode,
    std::shared_ptr<const kernels::WinogradPlan> wino_plan = nullptr,
    std::shared_ptr<const kernels::PackedLhsF32> packed_weights = nullptr);

}  // namespace hetacc::arch
