#pragma once
// On-chip FIFO channel between fused layers (paper §6: "the FIFO channels
// are used" because the line-buffer architecture makes all inter-layer
// accesses sequential). Tracks occupancy statistics so tests can verify the
// streaming design never needs ping-pong buffers.

#include <deque>
#include <stdexcept>
#include <vector>

namespace hetacc::arch {

/// One raster row of an M-channel feature map: data[c * width + w].
struct Row {
  std::vector<float> data;
};

class RowFifo {
 public:
  explicit RowFifo(std::size_t capacity_rows = SIZE_MAX)
      : capacity_(capacity_rows) {}

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] bool full() const { return q_.size() >= capacity_; }
  [[nodiscard]] std::size_t size() const { return q_.size(); }
  [[nodiscard]] std::size_t max_occupancy() const { return max_occupancy_; }
  [[nodiscard]] long long total_pushed() const { return pushed_; }

  void push(Row r) {
    if (full()) throw std::runtime_error("RowFifo overflow");
    q_.push_back(std::move(r));
    ++pushed_;
    max_occupancy_ = std::max(max_occupancy_, q_.size());
  }

  [[nodiscard]] Row pop() {
    if (empty()) throw std::runtime_error("RowFifo underflow");
    Row r = std::move(q_.front());
    q_.pop_front();
    return r;
  }

 private:
  std::size_t capacity_;
  std::deque<Row> q_;
  std::size_t max_occupancy_ = 0;
  long long pushed_ = 0;
};

}  // namespace hetacc::arch
