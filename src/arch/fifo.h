#pragma once
// On-chip FIFO channel between fused layers (paper §6: "the FIFO channels
// are used" because the line-buffer architecture makes all inter-layer
// accesses sequential). Tracks occupancy statistics so tests can verify the
// streaming design never needs ping-pong buffers.
//
// Fault hooks: an optional FaultInjector can corrupt pushed rows (modeled
// SEU on the FIFO BRAM) or wedge the channel entirely (a stalled AXI
// stream); with no injector attached every hook is a null-pointer check and
// behavior is byte-identical to the unhooked design.

#include <deque>
#include <stdexcept>
#include <vector>

#include "fault/fault.h"

namespace hetacc::arch {

/// One raster row of an M-channel feature map: data[c * width + w].
struct Row {
  std::vector<float> data;
};

class RowFifo {
 public:
  explicit RowFifo(std::size_t capacity_rows = SIZE_MAX)
      : capacity_(capacity_rows) {}

  [[nodiscard]] bool empty() const { return wedged_ || q_.empty(); }
  [[nodiscard]] bool full() const { return wedged_ || q_.size() >= capacity_; }
  [[nodiscard]] std::size_t size() const { return q_.size(); }
  [[nodiscard]] std::size_t max_occupancy() const { return max_occupancy_; }
  [[nodiscard]] long long total_pushed() const { return pushed_; }

  /// Attaches a fault injector; `channel` identifies this FIFO as an
  /// injection stream (the pipeline numbers its channels front to back).
  void attach_fault(const fault::FaultInjector* inj, std::uint64_t channel) {
    fault_ = inj;
    channel_ = channel;
  }

  /// A wedged channel refuses all traffic: empty() and full() both read
  /// true, exactly how a stalled downstream AXI consumer presents.
  void wedge() { wedged_ = true; }
  [[nodiscard]] bool wedged() const { return wedged_; }

  void push(Row r) {
    if (full()) throw std::runtime_error("RowFifo overflow");
    if (fault_) {
      fault_->maybe_corrupt_row(fault::FaultSite::kFifoPush, channel_,
                                static_cast<std::uint64_t>(pushed_),
                                r.data.data(), r.data.size());
      const auto& plan = fault_->plan();
      if (plan.wedge_channel >= 0 &&
          static_cast<std::uint64_t>(plan.wedge_channel) == channel_ &&
          pushed_ + 1 >= plan.wedge_after_pushes) {
        wedged_ = true;
      }
    }
    q_.push_back(std::move(r));
    ++pushed_;
    max_occupancy_ = std::max(max_occupancy_, q_.size());
  }

  [[nodiscard]] Row pop() {
    if (empty()) throw std::runtime_error("RowFifo underflow");
    Row r = std::move(q_.front());
    q_.pop_front();
    return r;
  }

 private:
  std::size_t capacity_;
  std::deque<Row> q_;
  std::size_t max_occupancy_ = 0;
  long long pushed_ = 0;
  const fault::FaultInjector* fault_ = nullptr;
  std::uint64_t channel_ = 0;
  bool wedged_ = false;
};

}  // namespace hetacc::arch
