#include "arch/pipeline.h"

#include <algorithm>
#include <cmath>

#include "cost/cost_model.h"
#include "fault/crc32.h"
#include "kernels/parallel.h"
#include "support/error.h"

namespace hetacc::arch {

long long PrepackBundle::resident_bytes() const {
  long long total = 0;
  for (const auto& p : wino) {
    if (!p) continue;
    total += static_cast<long long>(
        (p->bt.size() + p->at.size() + p->u.size()) * sizeof(double));
  }
  for (const auto& p : packed) {
    if (p) total += p->footprint_bytes();
  }
  for (const auto& p : int8) {
    if (!p) continue;
    total += p->packed.footprint_bytes();
    total += static_cast<long long>(p->requant.size() * sizeof(float));
    total += static_cast<long long>(p->bias.size() * sizeof(std::int32_t));
  }
  return total;
}

std::uint32_t PrepackBundle::content_crc() const {
  std::uint32_t crc = 0u;
  const auto fold = [&crc](const void* data, std::size_t bytes) {
    crc = fault::crc32(data, bytes, crc);
  };
  const auto fold_packed = [&fold](const auto& pk) {
    for (int pb = 0; pb < pk.pblocks(); ++pb) {
      for (int ib = 0; ib < pk.iblocks(); ++ib) {
        const auto& blk = pk.block(pb, ib);
        fold(blk.data(), blk.size() * sizeof(blk[0]));
      }
    }
  };
  for (const auto& p : wino) {
    if (!p) continue;
    fold(p->bt.data(), p->bt.size() * sizeof(double));
    fold(p->at.data(), p->at.size() * sizeof(double));
    fold(p->u.data(), p->u.size() * sizeof(double));
  }
  for (const auto& p : packed) {
    if (p) fold_packed(*p);
  }
  for (const auto& p : int8) {
    if (!p) continue;
    fold_packed(p->packed);
    fold(p->requant.data(), p->requant.size() * sizeof(float));
    fold(p->bias.data(), p->bias.size() * sizeof(std::int32_t));
    fold(&p->pad_value, sizeof(p->pad_value));
  }
  return crc;
}

FusionPipeline::FusionPipeline(const nn::Network& net,
                               const nn::WeightStore& ws,
                               std::vector<LayerChoice> choices)
    : net_(net), ws_(ws), choices_(std::move(choices)) {
  if (net_.empty() || net_[0].kind != nn::LayerKind::kInput) {
    throw std::invalid_argument("FusionPipeline: net must start with input");
  }
  const std::size_t layer_count = net_.size() - 1;
  if (choices_.empty()) choices_.resize(layer_count);
  if (choices_.size() != layer_count) {
    throw std::invalid_argument("FusionPipeline: choices size mismatch");
  }
  derive_layer_constants();
  engines_ = build_engine_set();
}

FusionPipeline::FusionPipeline(const nn::Network& net,
                               const nn::WeightStore& ws,
                               std::vector<LayerChoice> choices,
                               std::shared_ptr<const PrepackBundle> prepack)
    : net_(net), ws_(ws), choices_(std::move(choices)),
      prepack_(std::move(prepack)) {
  if (net_.empty() || net_[0].kind != nn::LayerKind::kInput) {
    throw std::invalid_argument("FusionPipeline: net must start with input");
  }
  const std::size_t layer_count = net_.size() - 1;
  if (choices_.empty()) choices_.resize(layer_count);
  if (choices_.size() != layer_count) {
    throw std::invalid_argument("FusionPipeline: choices size mismatch");
  }
  if (!prepack_ || prepack_->wino.size() != layer_count ||
      prepack_->packed.size() != layer_count ||
      prepack_->int8.size() != layer_count) {
    throw std::invalid_argument(
        "FusionPipeline: adopted prepack bundle does not match layer count");
  }
  engines_ = build_engine_set();
}

void FusionPipeline::derive_layer_constants() {
  // Derive per-layer constants once: transformed Winograd filters (the seed
  // re-ran transform_filters for every image) and packed GEMM weight panels.
  //
  // With a fault plan installed, the resident filter copy each constant is
  // derived from may take bit flips (modeled SEUs on the on-chip weight
  // store). The hardened design holds a CRC-32 of every panel computed at
  // load time; on mismatch it reloads the golden copy from DDR — the
  // "retry-with-reload" path — so protected runs derive from clean weights
  // and count the event as detected + recovered.
  //
  // The constants land in a *fresh* bundle assigned at the end: bundles are
  // immutable once published, so a fleet peer that adopted the previous one
  // (shared_prepack()) keeps a valid, un-struck copy for as long as it holds
  // the pointer.
  const std::size_t layer_count = net_.size() - 1;
  PrepackBundle b;
  b.wino.assign(layer_count, nullptr);
  b.packed.assign(layer_count, nullptr);
  b.int8.assign(layer_count, nullptr);
  // Weight-store SEUs hit one word per panel of this many floats.
  constexpr std::size_t kPanelFloats = 512;
  for (std::size_t i = 0; i + 1 < net_.size(); ++i) {
    const nn::Layer& l = net_[i + 1];
    if (l.kind != nn::LayerKind::kConv) continue;
    const nn::ConvWeights& w = ws_.conv(i + 1);
    const std::size_t n_words = static_cast<std::size_t>(w.filters.size());
    const nn::FilterBank* filters = &w.filters;
    nn::FilterBank resident;
    if (injector_ && injector_->plan().weight_panel_flip_rate > 0.0) {
      resident = w.filters;
      bool hit = false;
      for (std::size_t p = 0; p * kPanelFloats < n_words; ++p) {
        const std::size_t lo = p * kPanelFloats;
        const std::size_t len = std::min(kPanelFloats, n_words - lo);
        hit |= injector_->maybe_corrupt_row(
            fault::FaultSite::kWeightPanel, static_cast<std::uint64_t>(i),
            static_cast<std::uint64_t>(p), resident.data() + lo, len);
      }
      if (hit && protect_.enabled && protect_.crc_weights &&
          fault::crc32_f32(resident.data(), n_words) !=
              fault::crc32_f32(w.filters.data(), n_words)) {
        // CRC mismatch against the load-time checksum: reload golden.
        injector_->count_detected();
        injector_->count_recovered();
      } else if (hit) {
        filters = &resident;  // silent corruption: derive from flipped copy
      }
    }
    if (choices_[i].algo == fpga::ConvAlgo::kWinograd) {
      const algo::WinogradTransform t =
          algo::winograd(choices_[i].wino_m, l.conv().kernel);
      auto plan = std::make_shared<kernels::WinogradPlan>(
          algo::pack_winograd_plan(algo::transform_filters(t, *filters)));
      if (filters != &w.filters && protect_.enabled &&
          protect_.wino_checksum) {
        // Checksum-verified filter transform: the transform unit checks its
        // output against the column checksum stored with the golden plan.
        const auto golden = algo::pack_winograd_plan(
            algo::transform_filters(t, w.filters));
        if (fault::crc32(plan->u.data(), plan->u.size() * sizeof(double)) !=
            fault::crc32(golden.u.data(),
                         golden.u.size() * sizeof(double))) {
          injector_->count_detected();
          injector_->count_recovered();
          *plan = golden;  // re-transform from the clean filters
        }
      }
      b.wino[i] = std::move(plan);
    } else if (choices_[i].algo == fpga::ConvAlgo::kConventional) {
      if (choices_[i].mode.int8()) {
        // Int8 panels are derived from the (CRC-verified or golden) float
        // filters the same way the f32 panels are, so the protection path
        // above covers them too — a detected weight-panel SEU reloads the
        // golden copy before quantization, never silently bypassing CRC.
        if (filters == &w.filters) {
          b.int8[i] = make_int8_conv_constants(l, w, choices_[i].mode);
        } else {
          nn::ConvWeights resident_w{*filters, w.bias};
          b.int8[i] =
              make_int8_conv_constants(l, resident_w, choices_[i].mode);
        }
      } else {
        const int kk = l.in.c * l.conv().kernel * l.conv().kernel;
        b.packed[i] = std::make_shared<const kernels::PackedLhsF32>(
            filters->data(), l.out.c, kk, kk);
      }
    }
  }
  prepack_ = std::make_shared<const PrepackBundle>(std::move(b));
}

void FusionPipeline::install_fault_plan(const fault::FaultPlan& plan,
                                        const fault::ProtectionConfig& protect) {
  injector_ = std::make_unique<fault::FaultInjector>(plan);
  protect_ = protect;
  derive_layer_constants();
  engines_ = build_engine_set();
}

void FusionPipeline::clear_fault_plan() {
  injector_.reset();
  protect_ = fault::ProtectionConfig{};
  derive_layer_constants();
  engines_ = build_engine_set();
}

void FusionPipeline::reset() {
  // Clean pipelines keep their (possibly shared) bundle: a re-derive from
  // the golden weight store would be value-identical, so skipping it makes
  // reset() cheap and keeps fleet peers pointer-aliased. Under a fault plan
  // the re-derive is the whole point — the deterministic SEUs re-strike
  // fresh resident copies — and it publishes a new private bundle, leaving
  // any peer's adopted copy untouched.
  if (injector_) derive_layer_constants();
  engines_ = build_engine_set();
}

fault::FaultStats FusionPipeline::fault_stats() const {
  return injector_ ? injector_->stats() : fault::FaultStats{};
}

std::vector<std::unique_ptr<StreamEngine>> FusionPipeline::build_engine_set()
    const {
  std::vector<std::unique_ptr<StreamEngine>> engines;
  for (std::size_t i = 0; i + 1 < net_.size(); ++i) {
    const nn::Layer& l = net_[i + 1];
    if (l.is_merge()) {
      // Merge layers run on whole tensors between streams (run_dag); the
      // engine slot stays null to keep choices_/engines_ index-aligned.
      engines.push_back(nullptr);
      continue;
    }
    const nn::ConvWeights* w =
        (l.kind == nn::LayerKind::kConv) ? &ws_.conv(i + 1) : nullptr;
    std::optional<algo::WinogradTransform> t;
    if (l.kind == nn::LayerKind::kConv &&
        choices_[i].algo == fpga::ConvAlgo::kWinogradStride2) {
      throw std::invalid_argument(
          "FusionPipeline: no streaming engine for the stride-2 Winograd "
          "decomposition yet (use algo::winograd_conv_stride2 directly)");
    }
    if (l.kind == nn::LayerKind::kConv &&
        choices_[i].algo == fpga::ConvAlgo::kWinograd) {
      t = algo::winograd(choices_[i].wino_m, l.conv().kernel);
    }
    engines.push_back(make_engine(l, w, t, choices_[i].mode, prepack_->wino[i],
                                  prepack_->packed[i], prepack_->int8[i]));
  }
  return engines;
}

nn::Tensor FusionPipeline::run(const nn::Tensor& input) {
  return run_any(engines_, input, &stats_);
}

nn::Tensor FusionPipeline::run_any(
    std::vector<std::unique_ptr<StreamEngine>>& engines,
    const nn::Tensor& input, PipelineStats* stats) const {
  return net_.is_chain() ? run_with(engines, input, stats)
                         : run_dag(engines, input, stats);
}

std::vector<nn::Tensor> FusionPipeline::run_batch(
    const std::vector<nn::Tensor>& inputs, int threads) const {
  std::vector<nn::Tensor> outs(inputs.size());
  if (inputs.empty()) return outs;
  const int want = std::min<int>(kernels::resolve_threads(
                                     threads == 0 ? kernels::num_threads()
                                                  : threads),
                                 static_cast<int>(inputs.size()));
  const std::size_t per =
      (inputs.size() + static_cast<std::size_t>(std::max(want, 1)) - 1) /
      static_cast<std::size_t>(std::max(want, 1));
  // One engine set per claimed range (engines are stateful); the per-layer
  // constants in the prepack bundle are shared by all of them.
  kernels::parallel_for_ranges(
      inputs.size(), per, threads, [&](std::size_t lo, std::size_t hi) {
        auto engines = build_engine_set();
        for (std::size_t i = lo; i < hi; ++i) {
          outs[i] = run_any(engines, inputs[i], nullptr);
        }
      });
  return outs;
}

nn::Tensor FusionPipeline::run_with(
    std::vector<std::unique_ptr<StreamEngine>>& engines,
    const nn::Tensor& input, PipelineStats* stats) const {
  // Fresh engine state per image (the hardware resets its line-buffer
  // counters between frames); layer constants survive the reset.
  for (auto& e : engines) e->reset();
  if (input.shape() != net_[0].out) {
    throw std::invalid_argument("FusionPipeline::run: input shape " +
                                input.shape().str() + " != " +
                                net_[0].out.str());
  }
  const std::size_t n = engines.size();
  std::vector<RowFifo> fifos(n + 1);
  if (injector_) {
    // Channel i feeds engine i; channel n is the store stream. Engines use
    // their layer index as the line-buffer injection stream.
    for (std::size_t i = 0; i <= n; ++i) {
      fifos[i].attach_fault(injector_.get(), static_cast<std::uint64_t>(i));
    }
    for (std::size_t i = 0; i < n; ++i) {
      engines[i]->set_fault_injector(injector_.get(),
                                     static_cast<std::uint64_t>(i));
    }
  }
  if (stats) *stats = PipelineStats{};

  const nn::Shape out_shape = net_[net_.size() - 1].out;
  nn::Tensor out(out_shape);
  int out_rows = 0;
  int fed_rows = 0;

  // Feed one input row, then let every engine advance as far as it can —
  // this keeps FIFO occupancy near the hardware steady state instead of
  // buffering whole feature maps. The feeder honors the channel's
  // back-pressure (full() is also how a wedged channel presents), so a
  // stalled input stream surfaces through the watchdog, not as overflow.
  while (out_rows < out_shape.h) {
    if (cancel_ && cancel_->load(std::memory_order_relaxed)) {
      throw ServeError(ServeError::Reason::kCancelled,
                       "pipeline run cancelled after emitting " +
                           std::to_string(out_rows) + "/" +
                           std::to_string(out_shape.h) + " output rows");
    }
    const bool can_feed = fed_rows < input.shape().h && !fifos[0].full();
    if (can_feed) {
      Row r;
      r.data.resize(static_cast<std::size_t>(input.shape().c) *
                    input.shape().w);
      for (int c = 0; c < input.shape().c; ++c) {
        for (int w = 0; w < input.shape().w; ++w) {
          r.data[static_cast<std::size_t>(c) * input.shape().w + w] =
              input.at(c, fed_rows, w);
        }
      }
      fifos[0].push(std::move(r));
      ++fed_rows;
    }

    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t i = 0; i < n; ++i) {
        while (engines[i]->step(fifos[i], fifos[i + 1])) {
          progressed = true;
          if (stats) ++stats->total_steps;
        }
      }
      // Drain finished output rows.
      while (!fifos[n].empty()) {
        const Row r = fifos[n].pop();
        if (out_rows >= out_shape.h) {
          throw std::runtime_error("pipeline produced too many rows");
        }
        for (int c = 0; c < out_shape.c; ++c) {
          for (int w = 0; w < out_shape.w; ++w) {
            out.at(c, out_rows, w) =
                r.data[static_cast<std::size_t>(c) * out_shape.w + w];
          }
        }
        ++out_rows;
        progressed = true;
      }
    }
    if (!can_feed && out_rows < out_shape.h && !progressed) {
      // One more sweep is attempted by the loop; if nothing moves and the
      // feeder cannot either (input exhausted, or the input channel is
      // refusing traffic), the pipeline is deadlocked.
      bool anything = false;
      for (std::size_t i = 0; i < n && !anything; ++i) {
        anything = engines[i]->step(fifos[i], fifos[i + 1]);
      }
      if (!anything && fifos[n].empty()) {
        report_stall(engines, fifos);
      }
    }
  }

  if (stats) {
    stats->fifo_max_occupancy.clear();
    for (const auto& f : fifos) {
      stats->fifo_max_occupancy.push_back(f.max_occupancy());
    }
  }
  return out;
}

nn::Tensor FusionPipeline::run_dag(
    std::vector<std::unique_ptr<StreamEngine>>& engines,
    const nn::Tensor& input, PipelineStats* stats) const {
  // Graph walk: each single-input layer streams row-by-row through its
  // engine with a private FIFO pair (same feed/sweep/drain discipline as the
  // chained path); merge layers gather their producers' whole feature maps
  // and combine them between streams, which is how the generated design
  // stages branch arms through DDR today.
  for (auto& e : engines) {
    if (e) e->reset();
  }
  if (input.shape() != net_[0].out) {
    throw std::invalid_argument("FusionPipeline::run: input shape " +
                                input.shape().str() + " != " +
                                net_[0].out.str());
  }
  if (stats) {
    *stats = PipelineStats{};
    stats->fifo_max_occupancy.assign(net_.size(), 0);
  }
  std::vector<nn::Tensor> outs;
  outs.reserve(net_.size());
  outs.push_back(input);
  for (std::size_t i = 1; i < net_.size(); ++i) {
    const nn::Layer& l = net_[i];
    if (l.is_merge()) {
      std::vector<const nn::Tensor*> ins;
      ins.reserve(l.inputs.size());
      for (std::size_t u : l.inputs) ins.push_back(&outs[u]);
      outs.push_back(l.kind == nn::LayerKind::kConcat
                         ? nn::concat_reference(ins)
                         : nn::eltwise_add_reference(ins));
      continue;
    }
    outs.push_back(stream_layer(*engines[i - 1], outs[l.inputs.front()],
                                l.out, stats, i - 1));
  }
  return std::move(outs.back());
}

nn::Tensor FusionPipeline::stream_layer(StreamEngine& eng,
                                        const nn::Tensor& input,
                                        const nn::Shape& out_shape,
                                        PipelineStats* stats,
                                        std::size_t engine_idx) const {
  RowFifo in_fifo;
  RowFifo out_fifo;
  if (injector_) {
    // Same stream ids as the chained path: channel i feeds engine i, and the
    // engine uses its layer index as the line-buffer injection stream.
    in_fifo.attach_fault(injector_.get(),
                         static_cast<std::uint64_t>(engine_idx));
    out_fifo.attach_fault(injector_.get(),
                          static_cast<std::uint64_t>(engine_idx + 1));
    eng.set_fault_injector(injector_.get(),
                           static_cast<std::uint64_t>(engine_idx));
  }
  nn::Tensor out(out_shape);
  int out_rows = 0;
  int fed_rows = 0;
  while (out_rows < out_shape.h) {
    if (cancel_ && cancel_->load(std::memory_order_relaxed)) {
      throw ServeError(ServeError::Reason::kCancelled,
                       "pipeline run cancelled in stage '" +
                           eng.layer().name + "' after emitting " +
                           std::to_string(out_rows) + "/" +
                           std::to_string(out_shape.h) + " output rows");
    }
    const bool can_feed = fed_rows < input.shape().h && !in_fifo.full();
    if (can_feed) {
      Row r;
      r.data.resize(static_cast<std::size_t>(input.shape().c) *
                    input.shape().w);
      for (int c = 0; c < input.shape().c; ++c) {
        for (int w = 0; w < input.shape().w; ++w) {
          r.data[static_cast<std::size_t>(c) * input.shape().w + w] =
              input.at(c, fed_rows, w);
        }
      }
      in_fifo.push(std::move(r));
      ++fed_rows;
    }

    bool progressed = true;
    while (progressed) {
      progressed = false;
      while (eng.step(in_fifo, out_fifo)) {
        progressed = true;
        if (stats) ++stats->total_steps;
      }
      while (!out_fifo.empty()) {
        const Row r = out_fifo.pop();
        if (out_rows >= out_shape.h) {
          throw std::runtime_error("pipeline produced too many rows");
        }
        for (int c = 0; c < out_shape.c; ++c) {
          for (int w = 0; w < out_shape.w; ++w) {
            out.at(c, out_rows, w) =
                r.data[static_cast<std::size_t>(c) * out_shape.w + w];
          }
        }
        ++out_rows;
        progressed = true;
      }
    }
    if (!can_feed && out_rows < out_shape.h && !progressed) {
      if (!eng.step(in_fifo, out_fifo) && out_fifo.empty()) {
        if (in_fifo.wedged() || out_fifo.wedged()) {
          const std::size_t ch = in_fifo.wedged() ? engine_idx : engine_idx + 1;
          if (injector_) {
            const RowFifo& f = in_fifo.wedged() ? in_fifo : out_fifo;
            injector_->count_unrecovered(
                fault::FaultSite::kFifoPush, static_cast<std::uint64_t>(ch),
                static_cast<std::uint64_t>(f.total_pushed()), 0);
          }
          throw FaultError(
              "pipeline watchdog: FIFO channel " + std::to_string(ch) +
                  " feeding stage '" + eng.layer().name + "' wedged",
              eng.layer().name, static_cast<long long>(ch));
        }
        throw FaultError("pipeline watchdog: stage '" + eng.layer().name +
                             "' starved (input exhausted)",
                         eng.layer().name,
                         static_cast<long long>(engine_idx));
      }
    }
  }
  if (stats) {
    auto& occ = stats->fifo_max_occupancy;
    occ[engine_idx] = std::max(occ[engine_idx], in_fifo.max_occupancy());
    occ[engine_idx + 1] =
        std::max(occ[engine_idx + 1], out_fifo.max_occupancy());
  }
  return out;
}

void FusionPipeline::report_stall(
    const std::vector<std::unique_ptr<StreamEngine>>& engines,
    const std::vector<RowFifo>& fifos) const {
  // The DATAFLOW watchdog: no engine made progress, no input remains, and
  // the store stream is empty. Diagnose which stage wedged instead of
  // hanging (the hardware's watchdog timer raises an interrupt with the
  // stalled stream's id; here the "interrupt" is a structured FaultError).
  const std::size_t n = engines.size();
  for (std::size_t i = 0; i < fifos.size(); ++i) {
    if (!fifos[i].wedged()) continue;
    const std::string stage =
        i < n ? engines[i]->layer().name : std::string("store");
    if (injector_) {
      injector_->count_unrecovered(fault::FaultSite::kFifoPush,
                                   static_cast<std::uint64_t>(i),
                                   static_cast<std::uint64_t>(
                                       fifos[i].total_pushed()),
                                   0);
    }
    throw FaultError("pipeline watchdog: FIFO channel " + std::to_string(i) +
                         " feeding stage '" + stage +
                         "' wedged after " +
                         std::to_string(fifos[i].total_pushed()) + " pushes",
                     stage, static_cast<long long>(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!engines[i]->done()) {
      throw FaultError(
          "pipeline watchdog: stage '" + engines[i]->layer().name +
              "' starved (in fifo " + (fifos[i].empty() ? "empty" : "ready") +
              ", out fifo " + (fifos[i + 1].full() ? "full" : "ready") + ")",
          engines[i]->layer().name, static_cast<long long>(i));
    }
  }
  throw FaultError("pipeline watchdog: stalled with all engines done", "");
}

ScheduleResult simulate_schedule(const nn::Network& net, std::size_t first,
                                 std::size_t last,
                                 const std::vector<fpga::Implementation>& impls,
                                 const fpga::Device& dev) {
  if (first > last || last >= net.size() ||
      impls.size() != last - first + 1) {
    throw std::invalid_argument("simulate_schedule: bad range");
  }
  const double bpc = dev.bytes_per_cycle();

  // Ready times of the producer's rows; starts as the DDR load schedule of
  // the group's input feature map.
  const nn::Shape in_shape = net[first].in;
  const double in_row_cycles =
      cost::row_transfer_cycles(in_shape.w, in_shape.c, dev.data_bytes, bpc);
  std::vector<double> prev(static_cast<std::size_t>(in_shape.h));
  for (int r = 0; r < in_shape.h; ++r) {
    prev[static_cast<std::size_t>(r)] = (r + 1) * in_row_cycles;
  }

  ScheduleResult res;
  for (std::size_t li = first; li <= last; ++li) {
    const nn::Layer& l = net[li];
    const auto& ipl = impls[li - first];
    const int out_rows = l.out.h;
    const double row_cycles = static_cast<double>(ipl.compute_cycles) /
                              std::max(1, out_rows);
    const int window = l.window();
    const int stride = l.stride();
    const int pad = l.padding();
    const bool wino = ipl.cfg.algo == fpga::ConvAlgo::kWinograd;
    const int block = wino ? ipl.cfg.wino_m : 1;
    const int reach = wino ? ipl.cfg.wino_m + window - 1 : window;

    std::vector<double> cur(static_cast<std::size_t>(out_rows), 0.0);
    double t = 0.0;
    for (int i = 0; i < out_rows; ++i) {
      // Deepest producer row this output row (or its tile block) touches.
      const int base = wino ? (i / block) * block : i * stride;
      long long need = static_cast<long long>(base) + reach - 1 - pad;
      need = std::clamp<long long>(need, 0, l.in.h - 1);
      const double dep = prev[static_cast<std::size_t>(need)];
      t = std::max(t, dep) + row_cycles;
      cur[static_cast<std::size_t>(i)] = t;
    }
    res.layer_finish.push_back(static_cast<long long>(std::ceil(t)));
    if (li == last) {
      res.first_output_cycle = static_cast<long long>(std::ceil(cur.front()));
    }
    prev = std::move(cur);
  }

  // Drain the group output to DDR.
  const nn::Shape out_shape = net[last].out;
  const double out_row_cycles =
      cost::row_transfer_cycles(out_shape.w, out_shape.c, dev.data_bytes, bpc);
  double t = 0.0;
  for (int r = 0; r < out_shape.h; ++r) {
    t = std::max(t, prev[static_cast<std::size_t>(r)]) + out_row_cycles;
  }
  res.makespan_cycles = static_cast<long long>(std::ceil(t));
  return res;
}

}  // namespace hetacc::arch
