#include "arch/engines.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fixed/fixed16.h"

namespace hetacc::arch {

namespace {

float maybe_quantize(float v, int frac) {
  return frac >= 0 ? fixed::quantize_to_float(v, frac) : v;
}

/// Common row-ingestion machinery: presents the input as a padded stream of
/// rows held in a circular line buffer. Vertical padding rows are
/// synthesized, horizontal padding is embedded in the buffered row.
class RowWindowBase : public StreamEngine {
 public:
  RowWindowBase(const nn::Layer& layer, int lines, NumericMode mode)
      : layer_(layer), mode_(mode), pad_(layer.padding()),
        padded_w_(layer.in.w + 2 * layer.padding()),
        padded_h_(layer.in.h + 2 * layer.padding()),
        lb_(layer.in.c, layer.in.w + 2 * layer.padding(), lines) {}

  [[nodiscard]] const nn::Layer& layer() const override { return layer_; }
  [[nodiscard]] int line_buffer_lines() const override { return lb_.lines(); }
  [[nodiscard]] bool done() const override {
    return rows_emitted_ == layer_.out.h;
  }

  bool step(RowFifo& in, RowFifo& out) override {
    if (done()) return false;
    // Prefer emitting (drains the pipeline) over ingesting.
    if (window_ready()) {
      out.push(emit_row());
      ++rows_emitted_;
      return true;
    }
    return ingest(in);
  }

 protected:
  /// Next padded row index still to be pushed into the line buffer.
  [[nodiscard]] long long pushed() const { return lb_.next_row(); }

  bool ingest(RowFifo& in) {
    if (pushed() >= padded_h_) return false;
    const long long padded_row = pushed();
    const bool synthetic =
        padded_row < pad_ || padded_row >= pad_ + layer_.in.h;
    if (synthetic) {
      lb_.push_row(std::vector<float>(
          static_cast<std::size_t>(layer_.in.c) * padded_w_, 0.0f));
      return true;
    }
    if (in.empty()) return false;
    const Row r = in.pop();
    if (static_cast<int>(r.data.size()) != layer_.in.c * layer_.in.w) {
      throw std::runtime_error("engine '" + layer_.name +
                               "': unexpected input row width");
    }
    std::vector<float> padded(
        static_cast<std::size_t>(layer_.in.c) * padded_w_, 0.0f);
    for (int c = 0; c < layer_.in.c; ++c) {
      for (int w = 0; w < layer_.in.w; ++w) {
        padded[static_cast<std::size_t>(c) * padded_w_ + pad_ + w] =
            maybe_quantize(r.data[static_cast<std::size_t>(c) * layer_.in.w + w],
                           mode_.in_frac);
      }
    }
    lb_.push_row(padded);
    return true;
  }

  /// True when the line buffer holds every padded row the next output row
  /// (or row block) needs.
  [[nodiscard]] virtual bool window_ready() const = 0;
  [[nodiscard]] virtual Row emit_row() = 0;

  const nn::Layer layer_;
  const NumericMode mode_;
  const int pad_;
  const int padded_w_;
  const long long padded_h_;
  CircularLineBuffer lb_;
  int rows_emitted_ = 0;
};

// --------------------------------------------------------------------------
class ConvDirectEngine final : public RowWindowBase {
 public:
  ConvDirectEngine(const nn::Layer& layer, const nn::ConvWeights& w,
                   NumericMode mode)
      // Paper §4.2: the conventional line buffer has K + S lines.
      : RowWindowBase(layer, layer.conv().kernel + layer.conv().stride, mode),
        w_(w) {}

 private:
  [[nodiscard]] bool window_ready() const override {
    const int k = layer_.conv().kernel;
    const int s = layer_.conv().stride;
    return pushed() >= static_cast<long long>(rows_emitted_) * s + k;
  }

  [[nodiscard]] Row emit_row() override {
    const auto& cp = layer_.conv();
    const int k = cp.kernel, s = cp.stride;
    const long long top = static_cast<long long>(rows_emitted_) * s;
    Row r;
    r.data.resize(static_cast<std::size_t>(layer_.out.c) * layer_.out.w);
    for (int n = 0; n < layer_.out.c; ++n) {
      const float bias = w_.bias.empty() ? 0.0f : w_.bias[n];
      for (int j = 0; j < layer_.out.w; ++j) {
        double acc = bias;
        for (int m = 0; m < layer_.in.c; ++m) {
          for (int u = 0; u < k; ++u) {
            for (int v = 0; v < k; ++v) {
              acc += static_cast<double>(lb_.at(m, top + u, j * s + v)) *
                     w_.filters.at(n, m, u, v);
            }
          }
        }
        float val = static_cast<float>(acc);
        if (cp.fused_relu) val = std::max(val, 0.0f);
        r.data[static_cast<std::size_t>(n) * layer_.out.w + j] =
            maybe_quantize(val, mode_.out_frac);
      }
    }
    return r;
  }

  nn::ConvWeights w_;
};

// --------------------------------------------------------------------------
class WinogradEngine final : public RowWindowBase {
 public:
  WinogradEngine(const nn::Layer& layer, const nn::ConvWeights& w,
                 const algo::WinogradTransform& t, NumericMode mode)
      // n rows in flight through the transform plus m streaming in.
      : RowWindowBase(layer, t.n() + t.m, mode),
        t_(t),
        tf_(algo::transform_filters(t, w.filters)),
        bias_(w.bias) {
    if (layer.conv().stride != 1) {
      throw std::invalid_argument("WinogradEngine requires stride 1");
    }
    if (layer.conv().kernel != t.r) {
      throw std::invalid_argument("WinogradEngine: kernel != r");
    }
  }

 private:
  [[nodiscard]] bool window_ready() const override {
    if (!block_.empty()) return true;  // rows already computed, still emitting
    const long long b = rows_emitted_ / t_.m;
    // Bottom tiles may hang past the padded edge; the overhang is zero-fill,
    // so only in-range rows are required.
    const long long need =
        std::min<long long>(b * t_.m + t_.n(), padded_h_);
    return pushed() >= need;
  }

  [[nodiscard]] Row emit_row() override {
    if (block_.empty()) compute_block();
    Row r = std::move(block_.front());
    block_.erase(block_.begin());
    return r;
  }

  void compute_block() {
    const int n = t_.n(), m = t_.m;
    const long long b = rows_emitted_ / m;
    const long long top = b * m;
    const int rows_this_block =
        static_cast<int>(std::min<long long>(m, layer_.out.h - top));
    block_.assign(static_cast<std::size_t>(rows_this_block), Row{});
    for (auto& row : block_) {
      row.data.assign(static_cast<std::size_t>(layer_.out.c) * layer_.out.w,
                      0.0f);
    }

    const int tiles_w = (layer_.out.w + m - 1) / m;
    std::vector<algo::Matrix> v(static_cast<std::size_t>(layer_.in.c));
    for (int tj = 0; tj < tiles_w; ++tj) {
      for (int c = 0; c < layer_.in.c; ++c) {
        algo::Matrix d(n, n);
        for (int u = 0; u < n; ++u) {
          for (int vv = 0; vv < n; ++vv) {
            const int col = tj * m + vv;
            d.at(u, vv) = (col < padded_w_ && top + u < padded_h_)
                              ? lb_.at(c, top + u, col)
                              : 0.0;
          }
        }
        v[static_cast<std::size_t>(c)] = t_.bt * d * t_.bt.transposed();
      }
      for (int oc = 0; oc < layer_.out.c; ++oc) {
        algo::Matrix acc(n, n);
        for (int c = 0; c < layer_.in.c; ++c) {
          const algo::Matrix& u = tf_.at(oc, c);
          const algo::Matrix& vv = v[static_cast<std::size_t>(c)];
          for (int a = 0; a < n; ++a) {
            for (int bb = 0; bb < n; ++bb) {
              acc.at(a, bb) += u.at(a, bb) * vv.at(a, bb);
            }
          }
        }
        const algo::Matrix y = t_.at * acc * t_.at.transposed();
        const float bias = bias_.empty() ? 0.0f : bias_[oc];
        for (int a = 0; a < rows_this_block; ++a) {
          for (int bb = 0; bb < m; ++bb) {
            const int col = tj * m + bb;
            if (col >= layer_.out.w) break;
            float val = static_cast<float>(y.at(a, bb)) + bias;
            if (layer_.conv().fused_relu) val = std::max(val, 0.0f);
            block_[static_cast<std::size_t>(a)]
                .data[static_cast<std::size_t>(oc) * layer_.out.w + col] =
                maybe_quantize(val, mode_.out_frac);
          }
        }
      }
    }
  }

  algo::WinogradTransform t_;
  algo::TransformedFilters tf_;
  std::vector<float> bias_;
  std::vector<Row> block_;
};

// --------------------------------------------------------------------------
class PoolEngine final : public RowWindowBase {
 public:
  PoolEngine(const nn::Layer& layer, NumericMode mode)
      : RowWindowBase(layer, layer.pool().kernel + layer.pool().stride, mode) {}

 private:
  [[nodiscard]] bool window_ready() const override {
    const auto& pp = layer_.pool();
    // Caffe's ceil rounding can leave the last window hanging past the
    // padded bottom edge; it is clipped, so only in-range rows are required.
    const long long need = std::min<long long>(
        static_cast<long long>(rows_emitted_) * pp.stride + pp.kernel,
        padded_h_);
    return pushed() >= need;
  }

  [[nodiscard]] Row emit_row() override {
    const auto& pp = layer_.pool();
    const long long top = static_cast<long long>(rows_emitted_) * pp.stride;
    Row r;
    r.data.resize(static_cast<std::size_t>(layer_.out.c) * layer_.out.w);
    for (int c = 0; c < layer_.in.c; ++c) {
      for (int j = 0; j < layer_.out.w; ++j) {
        float best = -std::numeric_limits<float>::infinity();
        float sum = 0.0f;
        int count = 0;
        for (int u = 0; u < pp.kernel; ++u) {
          const long long hp = top + u;
          const long long h = hp - pad_;  // real input row
          if (h < 0 || h >= layer_.in.h) continue;
          for (int v = 0; v < pp.kernel; ++v) {
            const int wp = j * pp.stride + v;
            const int w = wp - pad_;
            if (w < 0 || w >= layer_.in.w) continue;
            const float x = lb_.at(c, hp, wp);
            best = std::max(best, x);
            sum += x;
            ++count;
          }
        }
        const float val =
            (pp.method == nn::PoolMethod::kMax)
                ? best
                : (count ? sum / static_cast<float>(count) : 0.0f);
        r.data[static_cast<std::size_t>(c) * layer_.out.w + j] =
            maybe_quantize(val, mode_.out_frac);
      }
    }
    return r;
  }
};

// --------------------------------------------------------------------------
class LrnEngine final : public StreamEngine {
 public:
  LrnEngine(const nn::Layer& layer, NumericMode mode)
      : layer_(layer), mode_(mode) {}

  [[nodiscard]] const nn::Layer& layer() const override { return layer_; }
  [[nodiscard]] int line_buffer_lines() const override { return 2; }
  [[nodiscard]] bool done() const override {
    return rows_emitted_ == layer_.out.h;
  }

  bool step(RowFifo& in, RowFifo& out) override {
    if (done() || in.empty()) return false;
    const Row r = in.pop();
    const auto& p = layer_.lrn();
    const int C = layer_.in.c, W = layer_.in.w;
    const int half = p.local_size / 2;
    Row o;
    o.data.resize(r.data.size());
    for (int c = 0; c < C; ++c) {
      const int lo = std::max(0, c - half);
      const int hi = std::min(C - 1, c + half);
      for (int w = 0; w < W; ++w) {
        float ss = 0.0f;
        for (int cc = lo; cc <= hi; ++cc) {
          const float x = maybe_quantize(
              r.data[static_cast<std::size_t>(cc) * W + w], mode_.in_frac);
          ss += x * x;
        }
        const float denom = std::pow(
            p.k + p.alpha / static_cast<float>(p.local_size) * ss, p.beta);
        const float x = maybe_quantize(
            r.data[static_cast<std::size_t>(c) * W + w], mode_.in_frac);
        o.data[static_cast<std::size_t>(c) * W + w] =
            maybe_quantize(x / denom, mode_.out_frac);
      }
    }
    out.push(std::move(o));
    ++rows_emitted_;
    return true;
  }

 private:
  const nn::Layer layer_;
  const NumericMode mode_;
  int rows_emitted_ = 0;
};

// --------------------------------------------------------------------------
class ReluEngine final : public StreamEngine {
 public:
  ReluEngine(const nn::Layer& layer, NumericMode mode)
      : layer_(layer), mode_(mode) {}

  [[nodiscard]] const nn::Layer& layer() const override { return layer_; }
  [[nodiscard]] int line_buffer_lines() const override { return 1; }
  [[nodiscard]] bool done() const override {
    return rows_emitted_ == layer_.out.h;
  }

  bool step(RowFifo& in, RowFifo& out) override {
    if (done() || in.empty()) return false;
    Row r = in.pop();
    for (auto& x : r.data) {
      x = maybe_quantize(std::max(x, 0.0f), mode_.out_frac);
    }
    out.push(std::move(r));
    ++rows_emitted_;
    return true;
  }

 private:
  const nn::Layer layer_;
  const NumericMode mode_;
  int rows_emitted_ = 0;
};

}  // namespace

std::unique_ptr<StreamEngine> make_engine(
    const nn::Layer& layer, const nn::ConvWeights* weights,
    std::optional<algo::WinogradTransform> wino, NumericMode mode) {
  switch (layer.kind) {
    case nn::LayerKind::kConv: {
      if (!weights) {
        throw std::invalid_argument("conv engine needs weights ('" +
                                    layer.name + "')");
      }
      if (wino) {
        return std::make_unique<WinogradEngine>(layer, *weights, *wino, mode);
      }
      return std::make_unique<ConvDirectEngine>(layer, *weights, mode);
    }
    case nn::LayerKind::kPool:
      return std::make_unique<PoolEngine>(layer, mode);
    case nn::LayerKind::kLrn:
      return std::make_unique<LrnEngine>(layer, mode);
    case nn::LayerKind::kRelu:
      return std::make_unique<ReluEngine>(layer, mode);
    default:
      throw std::invalid_argument("no streaming engine for layer kind '" +
                                  std::string(nn::to_string(layer.kind)) +
                                  "'");
  }
}

}  // namespace hetacc::arch
