#include "arch/engines.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "algo/int8_quant.h"
#include "fixed/fixed16.h"

namespace hetacc::arch {

namespace {

float maybe_quantize(float v, int frac) {
  return frac >= 0 ? fixed::quantize_to_float(v, frac) : v;
}

/// Snap a value onto the mode's input grid: the i8 activation grid in int8
/// mode (round-trip through the code so buffered floats are exactly
/// representable and later re-quantization recovers the same code), the
/// Q(in_frac) grid in fixed mode, identity in float mode.
float quantize_mode_in(const NumericMode& m, float v) {
  if (m.int8()) {
    return algo::dequantize_act_i8(
        algo::quantize_act_i8(v, m.in_scale, m.in_zp), m.in_scale, m.in_zp);
  }
  return maybe_quantize(v, m.in_frac);
}

float quantize_mode_out(const NumericMode& m, float v) {
  if (m.int8()) {
    return algo::dequantize_act_i8(
        algo::quantize_act_i8(v, m.out_scale, m.out_zp), m.out_scale,
        m.out_zp);
  }
  return maybe_quantize(v, m.out_frac);
}

/// Common row-ingestion machinery: presents the input as a padded stream of
/// rows held in a circular line buffer. Vertical padding rows are
/// synthesized, horizontal padding is embedded in the buffered row.
class RowWindowBase : public StreamEngine {
 public:
  RowWindowBase(const nn::Layer& layer, int lines, NumericMode mode)
      : layer_(layer), mode_(mode), pad_(layer.padding()),
        padded_w_(layer.in.w + 2 * layer.padding()),
        padded_h_(layer.in.h + 2 * layer.padding()),
        lb_(layer.in.c, layer.in.w + 2 * layer.padding(), lines) {}

  [[nodiscard]] const nn::Layer& layer() const override { return layer_; }
  [[nodiscard]] int line_buffer_lines() const override { return lb_.lines(); }
  [[nodiscard]] bool done() const override {
    return rows_emitted_ == layer_.out.h;
  }

  void reset() override {
    lb_.reset();
    rows_emitted_ = 0;
  }

  void set_fault_injector(const fault::FaultInjector* inj,
                          std::uint64_t stream) override {
    lb_.attach_fault(inj, stream);
  }

  bool step(RowFifo& in, RowFifo& out) override {
    if (done()) return false;
    // Prefer emitting (drains the pipeline) over ingesting; honor the
    // output channel's back-pressure (a wedged channel reads full()).
    if (window_ready() && !out.full()) {
      out.push(emit_row());
      ++rows_emitted_;
      return true;
    }
    if (window_ready()) return false;  // blocked on the output stream
    return ingest(in);
  }

 protected:
  /// Next padded row index still to be pushed into the line buffer.
  [[nodiscard]] long long pushed() const { return lb_.next_row(); }

  bool ingest(RowFifo& in) {
    if (pushed() >= padded_h_) return false;
    const long long padded_row = pushed();
    const bool synthetic =
        padded_row < pad_ || padded_row >= pad_ + layer_.in.h;
    if (synthetic) {
      lb_.push_row(std::vector<float>(
          static_cast<std::size_t>(layer_.in.c) * padded_w_, 0.0f));
      return true;
    }
    if (in.empty()) return false;
    const Row r = in.pop();
    if (static_cast<int>(r.data.size()) != layer_.in.c * layer_.in.w) {
      throw std::runtime_error("engine '" + layer_.name +
                               "': unexpected input row width");
    }
    std::vector<float> padded(
        static_cast<std::size_t>(layer_.in.c) * padded_w_, 0.0f);
    for (int c = 0; c < layer_.in.c; ++c) {
      for (int w = 0; w < layer_.in.w; ++w) {
        padded[static_cast<std::size_t>(c) * padded_w_ + pad_ + w] =
            quantize_mode_in(
                mode_,
                r.data[static_cast<std::size_t>(c) * layer_.in.w + w]);
      }
    }
    lb_.push_row(padded);
    return true;
  }

  /// True when the line buffer holds every padded row the next output row
  /// (or row block) needs.
  [[nodiscard]] virtual bool window_ready() const = 0;
  [[nodiscard]] virtual Row emit_row() = 0;

  const nn::Layer layer_;
  const NumericMode mode_;
  const int pad_;
  const int padded_w_;
  const long long padded_h_;
  CircularLineBuffer lb_;
  int rows_emitted_ = 0;
};

// --------------------------------------------------------------------------
class ConvDirectEngine final : public RowWindowBase {
 public:
  ConvDirectEngine(const nn::Layer& layer, const nn::ConvWeights& w,
                   NumericMode mode,
                   std::shared_ptr<const kernels::PackedLhsF32> packed,
                   std::shared_ptr<const Int8ConvConstants> i8c)
      // Paper §4.2: the conventional line buffer has K + S lines.
      : RowWindowBase(layer, layer.conv().kernel + layer.conv().stride, mode),
        bias_(w.bias),
        packed_(std::move(packed)),
        i8c_(std::move(i8c)) {
    const int k = layer.conv().kernel;
    const int kk = layer.in.c * k * k;
    if (mode_.int8()) {
      if (!i8c_) i8c_ = make_int8_conv_constants(layer, w, mode_);
      patch8_.resize(static_cast<std::size_t>(kk) * layer.out.w);
      out8_.resize(static_cast<std::size_t>(layer.out.c) * layer.out.w);
    } else if (!packed_) {
      // Weights packed into GEMM micro-panels once per engine, never per row.
      packed_ = std::make_shared<const kernels::PackedLhsF32>(
          w.filters.data(), layer.out.c, kk, kk);
    }
    patch_.resize(static_cast<std::size_t>(kk) * layer.out.w);
    acc_.resize(static_cast<std::size_t>(layer.out.c) * layer.out.w);
  }

 private:
  [[nodiscard]] bool window_ready() const override {
    const int k = layer_.conv().kernel;
    const int s = layer_.conv().stride;
    return pushed() >= static_cast<long long>(rows_emitted_) * s + k;
  }

  [[nodiscard]] Row emit_row() override {
    const auto& cp = layer_.conv();
    const int k = cp.kernel, s = cp.stride;
    const int ow = layer_.out.w;
    const long long top = static_cast<long long>(rows_emitted_) * s;

    // Lower this output row's window into an im2col panel: one row per
    // (channel, ku, kv) tap, one column per output pixel.
    std::size_t pr = 0;
    for (int m = 0; m < layer_.in.c; ++m) {
      for (int u = 0; u < k; ++u) {
        const float* src = lb_.row_ptr(m, top + u);
        for (int v = 0; v < k; ++v, ++pr) {
          float* dst = patch_.data() + pr * ow;
          if (s == 1) {
            std::copy(src + v, src + v + ow, dst);
          } else {
            for (int j = 0; j < ow; ++j) dst[j] = src[j * s + v];
          }
        }
      }
    }

    if (mode_.int8()) {
      // Recover the exact i8 codes of the buffered (grid-snapped) patch —
      // synthetic padding rows hold real 0.0, which quantizes to the input
      // zero-point, exactly the pad code im2col would have used — then run
      // the integer datapath: exact i32 accumulation, requantize-on-
      // writeback epilogue, dequantized onto the output grid.
      const std::size_t np = patch_.size();
      for (std::size_t p = 0; p < np; ++p) {
        patch8_[p] = algo::quantize_act_i8(patch_[p], mode_.in_scale,
                                           mode_.in_zp);
      }
      kernels::QuantParams qp;
      qp.scales = i8c_->requant.data();
      qp.per_channel = true;
      qp.bias = i8c_->bias.data();
      qp.zero_point = mode_.out_zp;
      qp.relu = cp.fused_relu;
      kernels::gemm_i8(i8c_->packed, ow, patch8_.data(), ow, out8_.data(),
                       ow, qp, /*threads=*/0);
      Row r;
      r.data.resize(static_cast<std::size_t>(layer_.out.c) * ow);
      for (std::size_t i = 0; i < r.data.size(); ++i) {
        r.data[i] = algo::dequantize_act_i8(out8_[i], mode_.out_scale,
                                            mode_.out_zp);
      }
      return r;
    }

    // One GEMM per output row; the MAC tree accumulates in double, exactly
    // like the seed's per-pixel loop nest.
    kernels::gemm_f32d(*packed_, ow, patch_.data(), ow, acc_.data(), ow,
                       bias_.empty() ? nullptr : bias_.data(),
                       /*relu=*/false, /*threads=*/0);

    Row r;
    r.data.resize(static_cast<std::size_t>(layer_.out.c) * ow);
    for (int n = 0; n < layer_.out.c; ++n) {
      for (int j = 0; j < ow; ++j) {
        float val = static_cast<float>(acc_[static_cast<std::size_t>(n) * ow + j]);
        if (cp.fused_relu) val = std::max(val, 0.0f);
        r.data[static_cast<std::size_t>(n) * ow + j] =
            maybe_quantize(val, mode_.out_frac);
      }
    }
    return r;
  }

  std::vector<float> bias_;
  std::shared_ptr<const kernels::PackedLhsF32> packed_;
  std::shared_ptr<const Int8ConvConstants> i8c_;
  std::vector<float> patch_;
  std::vector<double> acc_;
  std::vector<std::int8_t> patch8_;
  std::vector<std::int8_t> out8_;
};

// --------------------------------------------------------------------------
class WinogradEngine final : public RowWindowBase {
 public:
  WinogradEngine(const nn::Layer& layer, const nn::ConvWeights& w,
                 const algo::WinogradTransform& t, NumericMode mode,
                 std::shared_ptr<const kernels::WinogradPlan> plan)
      // n rows in flight through the transform plus m streaming in.
      : RowWindowBase(layer, t.n() + t.m, mode),
        plan_(std::move(plan)),
        bias_(w.bias) {
    if (layer.conv().stride != 1) {
      throw std::invalid_argument("WinogradEngine requires stride 1");
    }
    if (layer.conv().kernel != t.r) {
      throw std::invalid_argument("WinogradEngine: kernel != r");
    }
    if (!plan_) {
      // No shared plan supplied: transform the filters here, once per
      // engine (the pipeline caches and shares plans across images).
      plan_ = std::make_shared<const kernels::WinogradPlan>(
          algo::pack_winograd_plan(algo::transform_filters(t, w.filters)));
    }
    tiles_w_ = (layer.out.w + t.m - 1) / t.m;
    strip_w_ = (tiles_w_ - 1) * t.m + t.n();
    strip_.resize(static_cast<std::size_t>(layer.in.c) * t.n() * strip_w_);
  }

  void reset() override {
    RowWindowBase::reset();
    block_.clear();
  }

 private:
  [[nodiscard]] bool window_ready() const override {
    if (!block_.empty()) return true;  // rows already computed, still emitting
    const long long b = rows_emitted_ / plan_->m;
    // Bottom tiles may hang past the padded edge; the overhang is zero-fill,
    // so only in-range rows are required.
    const long long need =
        std::min<long long>(b * plan_->m + plan_->n, padded_h_);
    return pushed() >= need;
  }

  [[nodiscard]] Row emit_row() override {
    if (block_.empty()) compute_block();
    Row r = std::move(block_.front());
    block_.erase(block_.begin());
    return r;
  }

  void compute_block() {
    const int n = plan_->n, m = plan_->m;
    const long long b = rows_emitted_ / m;
    const long long top = b * m;
    const int rows_this_block =
        static_cast<int>(std::min<long long>(m, layer_.out.h - top));
    block_.assign(static_cast<std::size_t>(rows_this_block), Row{});
    for (auto& row : block_) {
      row.data.assign(static_cast<std::size_t>(layer_.out.c) * layer_.out.w,
                      0.0f);
    }

    // Gather the line-buffer window into a contiguous strip (zero beyond the
    // padded extent) and hand the whole tile row to the batched kernel.
    const int copy_w = std::min(strip_w_, padded_w_);
    for (int c = 0; c < layer_.in.c; ++c) {
      for (int u = 0; u < n; ++u) {
        float* dst =
            strip_.data() +
            (static_cast<std::size_t>(c) * n + u) * strip_w_;
        if (top + u >= padded_h_) {
          std::fill(dst, dst + strip_w_, 0.0f);
          continue;
        }
        const float* src = lb_.row_ptr(c, top + u);
        std::copy(src, src + copy_w, dst);
        if (copy_w < strip_w_) std::fill(dst + copy_w, dst + strip_w_, 0.0f);
      }
    }

    out_rows_.assign(
        static_cast<std::size_t>(rows_this_block) * layer_.out.c, nullptr);
    for (int a = 0; a < rows_this_block; ++a) {
      for (int oc = 0; oc < layer_.out.c; ++oc) {
        out_rows_[static_cast<std::size_t>(a) * layer_.out.c + oc] =
            block_[static_cast<std::size_t>(a)].data.data() +
            static_cast<std::size_t>(oc) * layer_.out.w;
      }
    }
    kernels::winograd_strip(*plan_, strip_.data(), strip_w_, tiles_w_,
                            out_rows_.data(), rows_this_block, layer_.out.w,
                            bias_.empty() ? nullptr : bias_.data(),
                            layer_.conv().fused_relu, mode_.out_frac,
                            /*threads=*/0);
  }

  std::shared_ptr<const kernels::WinogradPlan> plan_;
  std::vector<float> bias_;
  std::vector<Row> block_;
  int tiles_w_ = 0;
  int strip_w_ = 0;
  std::vector<float> strip_;
  std::vector<float*> out_rows_;  ///< reused across compute_block calls
};

// --------------------------------------------------------------------------
class PoolEngine final : public RowWindowBase {
 public:
  PoolEngine(const nn::Layer& layer, NumericMode mode)
      : RowWindowBase(layer, layer.pool().kernel + layer.pool().stride, mode) {}

 private:
  [[nodiscard]] bool window_ready() const override {
    const auto& pp = layer_.pool();
    // Caffe's ceil rounding can leave the last window hanging past the
    // padded bottom edge; it is clipped, so only in-range rows are required.
    const long long need = std::min<long long>(
        static_cast<long long>(rows_emitted_) * pp.stride + pp.kernel,
        padded_h_);
    return pushed() >= need;
  }

  [[nodiscard]] Row emit_row() override {
    const auto& pp = layer_.pool();
    const long long top = static_cast<long long>(rows_emitted_) * pp.stride;
    Row r;
    r.data.resize(static_cast<std::size_t>(layer_.out.c) * layer_.out.w);
    for (int c = 0; c < layer_.in.c; ++c) {
      for (int j = 0; j < layer_.out.w; ++j) {
        float best = -std::numeric_limits<float>::infinity();
        float sum = 0.0f;
        int count = 0;
        for (int u = 0; u < pp.kernel; ++u) {
          const long long hp = top + u;
          const long long h = hp - pad_;  // real input row
          if (h < 0 || h >= layer_.in.h) continue;
          for (int v = 0; v < pp.kernel; ++v) {
            const int wp = j * pp.stride + v;
            const int w = wp - pad_;
            if (w < 0 || w >= layer_.in.w) continue;
            const float x = lb_.at(c, hp, wp);
            best = std::max(best, x);
            sum += x;
            ++count;
          }
        }
        const float val =
            (pp.method == nn::PoolMethod::kMax)
                ? best
                : (count ? sum / static_cast<float>(count) : 0.0f);
        r.data[static_cast<std::size_t>(c) * layer_.out.w + j] =
            quantize_mode_out(mode_, val);
      }
    }
    return r;
  }
};

// --------------------------------------------------------------------------
class LrnEngine final : public StreamEngine {
 public:
  LrnEngine(const nn::Layer& layer, NumericMode mode)
      : layer_(layer), mode_(mode) {}

  [[nodiscard]] const nn::Layer& layer() const override { return layer_; }
  [[nodiscard]] int line_buffer_lines() const override { return 2; }
  [[nodiscard]] bool done() const override {
    return rows_emitted_ == layer_.out.h;
  }
  void reset() override { rows_emitted_ = 0; }

  bool step(RowFifo& in, RowFifo& out) override {
    if (done() || in.empty() || out.full()) return false;
    const Row r = in.pop();
    const auto& p = layer_.lrn();
    const int C = layer_.in.c, W = layer_.in.w;
    const int half = p.local_size / 2;
    Row o;
    o.data.resize(r.data.size());
    for (int c = 0; c < C; ++c) {
      const int lo = std::max(0, c - half);
      const int hi = std::min(C - 1, c + half);
      for (int w = 0; w < W; ++w) {
        float ss = 0.0f;
        for (int cc = lo; cc <= hi; ++cc) {
          const float x = quantize_mode_in(
              mode_, r.data[static_cast<std::size_t>(cc) * W + w]);
          ss += x * x;
        }
        const float denom = std::pow(
            p.k + p.alpha / static_cast<float>(p.local_size) * ss, p.beta);
        const float x = quantize_mode_in(
            mode_, r.data[static_cast<std::size_t>(c) * W + w]);
        o.data[static_cast<std::size_t>(c) * W + w] =
            quantize_mode_out(mode_, x / denom);
      }
    }
    out.push(std::move(o));
    ++rows_emitted_;
    return true;
  }

 private:
  const nn::Layer layer_;
  const NumericMode mode_;
  int rows_emitted_ = 0;
};

// --------------------------------------------------------------------------
class ReluEngine final : public StreamEngine {
 public:
  ReluEngine(const nn::Layer& layer, NumericMode mode)
      : layer_(layer), mode_(mode) {}

  [[nodiscard]] const nn::Layer& layer() const override { return layer_; }
  [[nodiscard]] int line_buffer_lines() const override { return 1; }
  [[nodiscard]] bool done() const override {
    return rows_emitted_ == layer_.out.h;
  }
  void reset() override { rows_emitted_ = 0; }

  bool step(RowFifo& in, RowFifo& out) override {
    if (done() || in.empty() || out.full()) return false;
    Row r = in.pop();
    for (auto& x : r.data) {
      x = quantize_mode_out(mode_, std::max(x, 0.0f));
    }
    out.push(std::move(r));
    ++rows_emitted_;
    return true;
  }

 private:
  const nn::Layer layer_;
  const NumericMode mode_;
  int rows_emitted_ = 0;
};

}  // namespace

std::shared_ptr<const Int8ConvConstants> make_int8_conv_constants(
    const nn::Layer& layer, const nn::ConvWeights& w,
    const NumericMode& mode) {
  if (!mode.int8()) {
    throw std::invalid_argument("int8 constants need an int8 mode ('" +
                                layer.name + "')");
  }
  const int k = layer.conv().kernel;
  const int rows = layer.in.c * k * k;
  algo::Int8ConvQuant q;
  q.in_scale = mode.in_scale;
  q.in_zp = mode.in_zp;
  q.out_scale = mode.out_scale;
  q.out_zp = mode.out_zp;
  q.per_channel = true;
  q.w_scales.resize(static_cast<std::size_t>(layer.out.c));
  for (int n = 0; n < layer.out.c; ++n) {
    float m = 0.0f;
    const float* wp =
        w.filters.data() + static_cast<std::size_t>(n) * rows;
    for (int j = 0; j < rows; ++j) m = std::max(m, std::abs(wp[j]));
    q.w_scales[static_cast<std::size_t>(n)] = m > 0.0f ? m / 127.0f : 1.0f;
  }
  const std::vector<std::int8_t> wq = algo::quantize_filters_i8(w.filters, q);
  auto consts = std::make_shared<Int8ConvConstants>();
  consts->packed =
      kernels::PackedLhsI8(wq.data(), layer.out.c, rows, rows);
  consts->requant = algo::requant_scales(q, layer.out.c);
  consts->bias = algo::fold_bias_i8(w.bias, q, wq.data(), layer.out.c, rows);
  consts->pad_value = algo::quantize_act_i8(0.0f, q.in_scale, q.in_zp);
  return consts;
}

std::unique_ptr<StreamEngine> make_engine(
    const nn::Layer& layer, const nn::ConvWeights* weights,
    std::optional<algo::WinogradTransform> wino, NumericMode mode,
    std::shared_ptr<const kernels::WinogradPlan> wino_plan,
    std::shared_ptr<const kernels::PackedLhsF32> packed_weights,
    std::shared_ptr<const Int8ConvConstants> int8_consts) {
  switch (layer.kind) {
    case nn::LayerKind::kConv: {
      if (!weights) {
        throw std::invalid_argument("conv engine needs weights ('" +
                                    layer.name + "')");
      }
      if (wino) {
        if (mode.int8()) {
          throw std::invalid_argument(
              "int8 mode is conventional-only ('" + layer.name + "')");
        }
        return std::make_unique<WinogradEngine>(layer, *weights, *wino, mode,
                                                std::move(wino_plan));
      }
      return std::make_unique<ConvDirectEngine>(layer, *weights, mode,
                                                std::move(packed_weights),
                                                std::move(int8_consts));
    }
    case nn::LayerKind::kPool:
      return std::make_unique<PoolEngine>(layer, mode);
    case nn::LayerKind::kLrn:
      return std::make_unique<LrnEngine>(layer, mode);
    case nn::LayerKind::kRelu:
      return std::make_unique<ReluEngine>(layer, mode);
    default:
      throw std::invalid_argument("no streaming engine for layer kind '" +
                                  std::string(nn::to_string(layer.kind)) +
                                  "'");
  }
}

}  // namespace hetacc::arch
