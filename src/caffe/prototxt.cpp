#include "caffe/prototxt.h"

#include <cctype>
#include <cmath>
#include <stdexcept>

#include "support/error.h"

namespace hetacc::caffe {

const std::vector<Value>& Message::all(const std::string& key) const {
  auto it = fields_.find(key);
  if (it == fields_.end()) {
    throw ParseError("prototxt: missing field '" + key + "'");
  }
  return it->second;
}

double Message::number(const std::string& key, double fallback) const {
  auto it = fields_.find(key);
  if (it == fields_.end() || it->second.empty()) return fallback;
  const Value& v = it->second.front();
  if (const double* d = std::get_if<double>(&v)) return *d;
  throw ParseError("prototxt: field '" + key + "' is not numeric");
}

long long Message::integer(const std::string& key, long long fallback) const {
  const double d = number(key, static_cast<double>(fallback));
  // Guard the double -> integer cast: out-of-range (or NaN) values are
  // undefined behavior in C++, and real deploy files do contain overflowing
  // literals. 2^62 bounds keep every in-range cast exact.
  if (!(d >= -4.611686018427387904e18 && d <= 4.611686018427387904e18)) {
    throw ParseError("prototxt: field '" + key + "' value " +
                     std::to_string(d) + " overflows an integer");
  }
  return static_cast<long long>(d);
}

std::string Message::str(const std::string& key,
                         const std::string& fallback) const {
  auto it = fields_.find(key);
  if (it == fields_.end() || it->second.empty()) return fallback;
  const Value& v = it->second.front();
  if (const std::string* s = std::get_if<std::string>(&v)) return *s;
  throw ParseError("prototxt: field '" + key + "' is not a string");
}

const Message* Message::child(const std::string& key) const {
  auto it = fields_.find(key);
  if (it == fields_.end() || it->second.empty()) return nullptr;
  const Value& v = it->second.front();
  if (const auto* m = std::get_if<std::shared_ptr<Message>>(&v)) {
    return m->get();
  }
  throw ParseError("prototxt: field '" + key + "' is not a message");
}

std::vector<const Message*> Message::children(const std::string& key) const {
  std::vector<const Message*> out;
  auto it = fields_.find(key);
  if (it == fields_.end()) return out;
  for (const Value& v : it->second) {
    if (const auto* m = std::get_if<std::shared_ptr<Message>>(&v)) {
      out.push_back(m->get());
    } else {
      throw ParseError("prototxt: field '" + key +
                       "' mixes scalars and messages");
    }
  }
  return out;
}

namespace {

struct Lexer {
  std::string_view text;
  std::size_t pos = 0;
  int line = 1;

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("prototxt: " + what, line);
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '\n') {
        ++line;
        ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '#') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool eof() {
    skip_ws();
    return pos >= text.size();
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  [[nodiscard]] std::string identifier() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_')) {
      ++pos;
    }
    if (start == pos) fail("expected identifier");
    return std::string(text.substr(start, pos - start));
  }

  [[nodiscard]] std::string quoted_string() {
    skip_ws();
    const char quote = text[pos];
    if (quote != '"' && quote != '\'') fail("expected string");
    ++pos;
    std::string out;
    while (pos < text.size() && text[pos] != quote) {
      if (text[pos] == '\n') fail("unterminated string");
      out.push_back(text[pos++]);
    }
    if (pos >= text.size()) fail("unterminated string");
    ++pos;
    return out;
  }

  [[nodiscard]] double number_token() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
    }
    if (start == pos) fail("expected number");
    try {
      return std::stod(std::string(text.substr(start, pos - start)));
    } catch (const std::exception&) {
      fail("malformed number '" +
           std::string(text.substr(start, pos - start)) + "'");
    }
  }
};

void parse_message_body(Lexer& lx, Message& msg, bool top_level);

void parse_field(Lexer& lx, Message& msg) {
  const std::string key = lx.identifier();
  const int key_line = lx.line;
  const char c = lx.peek();
  if (c == '{') {
    lx.expect('{');
    auto sub = std::make_shared<Message>();
    sub->set_line(key_line);
    parse_message_body(lx, *sub, /*top_level=*/false);
    lx.expect('}');
    msg.add(key, std::move(sub));
    return;
  }
  if (c == ':') {
    lx.expect(':');
    const char v = lx.peek();
    if (v == '"' || v == '\'') {
      msg.add(key, lx.quoted_string());
    } else if (v == '{') {
      // "field: { ... }" form is also legal text format.
      lx.expect('{');
      auto sub = std::make_shared<Message>();
      sub->set_line(key_line);
      parse_message_body(lx, *sub, false);
      lx.expect('}');
      msg.add(key, std::move(sub));
    } else if (std::isdigit(static_cast<unsigned char>(v)) || v == '-' ||
               v == '+' || v == '.') {
      msg.add(key, lx.number_token());
    } else {
      const std::string word = lx.identifier();
      if (word == "true") {
        msg.add(key, true);
      } else if (word == "false") {
        msg.add(key, false);
      } else {
        msg.add(key, word);  // enum constant like MAX / AVE
      }
    }
    return;
  }
  lx.fail("expected ':' or '{' after '" + key + "'");
}

void parse_message_body(Lexer& lx, Message& msg, bool top_level) {
  while (true) {
    if (lx.eof()) {
      if (!top_level) lx.fail("unexpected end of input (missing '}')");
      return;
    }
    if (lx.peek() == '}') {
      if (top_level) lx.fail("unmatched '}'");
      return;
    }
    parse_field(lx, msg);
  }
}

}  // namespace

Message parse_prototxt(std::string_view text) {
  Lexer lx{text};
  Message root;
  parse_message_body(lx, root, /*top_level=*/true);
  return root;
}

}  // namespace hetacc::caffe
