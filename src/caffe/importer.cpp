#include "caffe/importer.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "nn/model_zoo.h"
#include "support/error.h"

namespace hetacc::caffe {

namespace {

/// Checked double -> int conversion for dimension/parameter fields. The
/// blind static_cast this replaces was undefined behavior for the
/// overflowing literals a fuzzer (or a corrupted deploy file) produces.
int checked_dim(const Value& v, const char* what) {
  const double* d = std::get_if<double>(&v);
  if (!d) {
    throw ParseError(std::string("caffe import: ") + what +
                     " must be numeric");
  }
  if (!(std::floor(*d) == *d) || !(*d >= -2147483648.0) ||
      !(*d <= 2147483647.0)) {
    throw ParseError(std::string("caffe import: ") + what + " value " +
                     std::to_string(*d) + " is not a valid integer");
  }
  return static_cast<int>(*d);
}

/// Message::integer (already range-checked) narrowed to int.
int checked_int(const Message& p, const std::string& key, long long fallback,
                const char* what) {
  const long long v = p.integer(key, fallback);
  if (v < -2147483648ll || v > 2147483647ll) {
    throw ParseError(std::string("caffe import: ") + what + " field '" + key +
                     "' value " + std::to_string(v) + " overflows");
  }
  return static_cast<int>(v);
}

nn::Shape input_shape_of(const Message& root) {
  // Classic header: input: "data" + 4x input_dim (N, C, H, W).
  if (root.count("input_dim") == 4) {
    const auto& dims = root.all("input_dim");
    return nn::Shape{checked_dim(dims[1], "input_dim"),
                     checked_dim(dims[2], "input_dim"),
                     checked_dim(dims[3], "input_dim")};
  }
  // input_shape { dim: ... } header.
  if (const Message* is = root.child("input_shape")) {
    const auto& dims = is->all("dim");
    if (dims.size() == 4) {
      return nn::Shape{checked_dim(dims[1], "input_shape.dim"),
                       checked_dim(dims[2], "input_shape.dim"),
                       checked_dim(dims[3], "input_shape.dim")};
    }
  }
  // Modern style: layer { type: "Input" input_param { shape { dim ... } } }.
  for (const char* key : {"layer", "layers"}) {
    for (const Message* l : root.children(key)) {
      if (l->str("type") != "Input") continue;
      const Message* ip = l->child("input_param");
      const Message* shape = ip ? ip->child("shape") : nullptr;
      if (!shape) continue;
      const auto& dims = shape->all("dim");
      if (dims.size() != 4) {
        throw ParseError("caffe import: Input layer needs 4 dims");
      }
      return nn::Shape{checked_dim(dims[1], "input_param.shape.dim"),
                       checked_dim(dims[2], "input_param.shape.dim"),
                       checked_dim(dims[3], "input_param.shape.dim")};
    }
  }
  throw ParseError("caffe import: no input shape found");
}

int kernel_of(const Message& p, const char* what) {
  const int k = checked_int(p, "kernel_size", 0, what);
  if (k <= 0) {
    throw ParseError(std::string("caffe import: ") + what +
                     " without kernel_size");
  }
  return k;
}

}  // namespace

nn::Network import_prototxt(std::string_view text) {
  const Message root = parse_prototxt(text);
  nn::Network net(root.str("name", "caffe-net"));
  net.input(input_shape_of(root));

  std::vector<const Message*> layers = root.children("layer");
  if (layers.empty()) layers = root.children("layers");

  for (const Message* l : layers) {
    const std::string type = l->str("type");
    const std::string name = l->str("name", type);
    if (type == "Input" || type == "Data" || type == "Dropout") {
      continue;  // shape header handled above; dropout is inference no-op
    }
    if (type == "Convolution") {
      const Message* p = l->child("convolution_param");
      if (!p) {
        throw ParseError("caffe import: conv '" + name +
                         "' without convolution_param");
      }
      net.conv(checked_int(*p, "num_output", 0, "Convolution"),
               kernel_of(*p, "Convolution"),
               checked_int(*p, "stride", 1, "Convolution"),
               checked_int(*p, "pad", 0, "Convolution"), name,
               /*fused_relu=*/false);
    } else if (type == "ReLU") {
      // In-place ReLU folds into the preceding conv (paper §7.2).
      if (!net.empty() && net[net.size() - 1].kind == nn::LayerKind::kConv) {
        std::get<nn::ConvParam>(net[net.size() - 1].param).fused_relu = true;
      } else {
        net.relu(name);
      }
    } else if (type == "Pooling") {
      const Message* p = l->child("pooling_param");
      if (!p) {
        throw ParseError("caffe import: pool '" + name +
                         "' without pooling_param");
      }
      const std::string method = p->str("pool", "MAX");
      const int k = kernel_of(*p, "Pooling");
      const int stride = checked_int(*p, "stride", 1, "Pooling");
      const int pad = checked_int(*p, "pad", 0, "Pooling");
      if (method == "MAX") {
        net.max_pool(k, stride, name, pad);
      } else if (method == "AVE") {
        net.avg_pool(k, stride, name, pad);
      } else {
        throw ParseError("caffe import: pool method '" + method +
                         "' unsupported");
      }
    } else if (type == "LRN") {
      const Message* p = l->child("lrn_param");
      net.lrn(p ? checked_int(*p, "local_size", 5, "LRN") : 5,
              p ? static_cast<float>(p->number("alpha", 1e-4)) : 1e-4f,
              p ? static_cast<float>(p->number("beta", 0.75)) : 0.75f, name);
    } else if (type == "InnerProduct") {
      const Message* p = l->child("inner_product_param");
      if (!p) {
        throw ParseError("caffe import: fc '" + name +
                         "' without inner_product_param");
      }
      net.fc(checked_int(*p, "num_output", 0, "InnerProduct"), name,
             /*fused_relu=*/false);
    } else if (type == "Softmax" || type == "SoftmaxWithLoss") {
      net.softmax(name);
    } else {
      throw ParseError("caffe import: unsupported layer type '" + type +
                       "' (layer '" + name + "')");
    }
  }
  return net;
}

nn::Network import_prototxt_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open prototxt file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return import_prototxt(ss.str());
}

std::string export_prototxt(const nn::Network& net) {
  std::ostringstream os;
  os << "name: \"" << net.name() << "\"\n";
  std::string prev = "data";
  for (std::size_t i = 0; i < net.size(); ++i) {
    const nn::Layer& l = net[i];
    if (l.kind == nn::LayerKind::kInput) {
      os << "input: \"data\"\n";
      os << "input_dim: 1\ninput_dim: " << l.out.c << "\ninput_dim: "
         << l.out.h << "\ninput_dim: " << l.out.w << "\n";
      continue;
    }
    os << "layer {\n  name: \"" << l.name << "\"\n  bottom: \"" << prev
       << "\"\n  top: \"" << l.name << "\"\n";
    switch (l.kind) {
      case nn::LayerKind::kConv: {
        const auto& p = l.conv();
        os << "  type: \"Convolution\"\n  convolution_param {\n"
           << "    num_output: " << p.out_channels << "\n    kernel_size: "
           << p.kernel << "\n    stride: " << p.stride << "\n    pad: "
           << p.pad << "\n  }\n";
        break;
      }
      case nn::LayerKind::kPool: {
        const auto& p = l.pool();
        os << "  type: \"Pooling\"\n  pooling_param {\n    pool: "
           << (p.method == nn::PoolMethod::kMax ? "MAX" : "AVE")
           << "\n    kernel_size: " << p.kernel << "\n    stride: "
           << p.stride << "\n";
        if (p.pad) os << "    pad: " << p.pad << "\n";
        os << "  }\n";
        break;
      }
      case nn::LayerKind::kLrn: {
        const auto& p = l.lrn();
        os << "  type: \"LRN\"\n  lrn_param {\n    local_size: "
           << p.local_size << "\n    alpha: " << p.alpha << "\n    beta: "
           << p.beta << "\n  }\n";
        break;
      }
      case nn::LayerKind::kRelu:
        os << "  type: \"ReLU\"\n";
        break;
      case nn::LayerKind::kFullyConnected:
        os << "  type: \"InnerProduct\"\n  inner_product_param {\n"
           << "    num_output: " << l.fc().out_features << "\n  }\n";
        break;
      case nn::LayerKind::kSoftmax:
        os << "  type: \"Softmax\"\n";
        break;
      case nn::LayerKind::kInput:
        break;
    }
    os << "}\n";
    prev = l.name;
    // Emit the folded ReLU as an explicit in-place layer so round-trips
    // preserve activation semantics.
    if (l.kind == nn::LayerKind::kConv && l.conv().fused_relu) {
      os << "layer {\n  name: \"" << l.name << "_relu\"\n  type: \"ReLU\"\n"
         << "  bottom: \"" << l.name << "\"\n  top: \"" << l.name
         << "\"\n}\n";
    }
  }
  return os.str();
}

std::string alexnet_prototxt() {
  return export_prototxt(nn::alexnet());
}

std::string vgg_e_prototxt() {
  return export_prototxt(nn::vgg_e());
}

}  // namespace hetacc::caffe
