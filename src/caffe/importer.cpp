#include "caffe/importer.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "nn/model_zoo.h"

namespace hetacc::caffe {

namespace {

nn::Shape input_shape_of(const Message& root) {
  // Classic header: input: "data" + 4x input_dim (N, C, H, W).
  if (root.count("input_dim") == 4) {
    const auto& dims = root.all("input_dim");
    auto dim = [&](std::size_t i) {
      return static_cast<int>(std::get<double>(dims[i]));
    };
    return nn::Shape{dim(1), dim(2), dim(3)};
  }
  // input_shape { dim: ... } header.
  if (const Message* is = root.child("input_shape")) {
    const auto& dims = is->all("dim");
    if (dims.size() == 4) {
      return nn::Shape{static_cast<int>(std::get<double>(dims[1])),
                       static_cast<int>(std::get<double>(dims[2])),
                       static_cast<int>(std::get<double>(dims[3]))};
    }
  }
  // Modern style: layer { type: "Input" input_param { shape { dim ... } } }.
  for (const char* key : {"layer", "layers"}) {
    for (const Message* l : root.children(key)) {
      if (l->str("type") != "Input") continue;
      const Message* ip = l->child("input_param");
      const Message* shape = ip ? ip->child("shape") : nullptr;
      if (!shape) continue;
      const auto& dims = shape->all("dim");
      if (dims.size() != 4) {
        throw std::runtime_error("caffe import: Input layer needs 4 dims");
      }
      return nn::Shape{static_cast<int>(std::get<double>(dims[1])),
                       static_cast<int>(std::get<double>(dims[2])),
                       static_cast<int>(std::get<double>(dims[3]))};
    }
  }
  throw std::runtime_error("caffe import: no input shape found");
}

int kernel_of(const Message& p, const char* what) {
  const long long k = p.integer("kernel_size", 0);
  if (k <= 0) {
    throw std::runtime_error(std::string("caffe import: ") + what +
                             " without kernel_size");
  }
  return static_cast<int>(k);
}

}  // namespace

nn::Network import_prototxt(std::string_view text) {
  const Message root = parse_prototxt(text);
  nn::Network net(root.str("name", "caffe-net"));
  net.input(input_shape_of(root));

  std::vector<const Message*> layers = root.children("layer");
  if (layers.empty()) layers = root.children("layers");

  for (const Message* l : layers) {
    const std::string type = l->str("type");
    const std::string name = l->str("name", type);
    if (type == "Input" || type == "Data" || type == "Dropout") {
      continue;  // shape header handled above; dropout is inference no-op
    }
    if (type == "Convolution") {
      const Message* p = l->child("convolution_param");
      if (!p) {
        throw std::runtime_error("caffe import: conv '" + name +
                                 "' without convolution_param");
      }
      net.conv(static_cast<int>(p->integer("num_output", 0)),
               kernel_of(*p, "Convolution"),
               static_cast<int>(p->integer("stride", 1)),
               static_cast<int>(p->integer("pad", 0)), name,
               /*fused_relu=*/false);
    } else if (type == "ReLU") {
      // In-place ReLU folds into the preceding conv (paper §7.2).
      if (!net.empty() && net[net.size() - 1].kind == nn::LayerKind::kConv) {
        std::get<nn::ConvParam>(net[net.size() - 1].param).fused_relu = true;
      } else {
        net.relu(name);
      }
    } else if (type == "Pooling") {
      const Message* p = l->child("pooling_param");
      if (!p) {
        throw std::runtime_error("caffe import: pool '" + name +
                                 "' without pooling_param");
      }
      const std::string method = p->str("pool", "MAX");
      const int k = kernel_of(*p, "Pooling");
      const int stride = static_cast<int>(p->integer("stride", 1));
      const int pad = static_cast<int>(p->integer("pad", 0));
      if (method == "MAX") {
        net.max_pool(k, stride, name, pad);
      } else if (method == "AVE") {
        net.avg_pool(k, stride, name, pad);
      } else {
        throw std::runtime_error("caffe import: pool method '" + method +
                                 "' unsupported");
      }
    } else if (type == "LRN") {
      const Message* p = l->child("lrn_param");
      net.lrn(p ? static_cast<int>(p->integer("local_size", 5)) : 5,
              p ? static_cast<float>(p->number("alpha", 1e-4)) : 1e-4f,
              p ? static_cast<float>(p->number("beta", 0.75)) : 0.75f, name);
    } else if (type == "InnerProduct") {
      const Message* p = l->child("inner_product_param");
      if (!p) {
        throw std::runtime_error("caffe import: fc '" + name +
                                 "' without inner_product_param");
      }
      net.fc(static_cast<int>(p->integer("num_output", 0)), name,
             /*fused_relu=*/false);
    } else if (type == "Softmax" || type == "SoftmaxWithLoss") {
      net.softmax(name);
    } else {
      throw std::runtime_error("caffe import: unsupported layer type '" +
                               type + "' (layer '" + name + "')");
    }
  }
  return net;
}

nn::Network import_prototxt_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open prototxt file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return import_prototxt(ss.str());
}

std::string export_prototxt(const nn::Network& net) {
  std::ostringstream os;
  os << "name: \"" << net.name() << "\"\n";
  std::string prev = "data";
  for (std::size_t i = 0; i < net.size(); ++i) {
    const nn::Layer& l = net[i];
    if (l.kind == nn::LayerKind::kInput) {
      os << "input: \"data\"\n";
      os << "input_dim: 1\ninput_dim: " << l.out.c << "\ninput_dim: "
         << l.out.h << "\ninput_dim: " << l.out.w << "\n";
      continue;
    }
    os << "layer {\n  name: \"" << l.name << "\"\n  bottom: \"" << prev
       << "\"\n  top: \"" << l.name << "\"\n";
    switch (l.kind) {
      case nn::LayerKind::kConv: {
        const auto& p = l.conv();
        os << "  type: \"Convolution\"\n  convolution_param {\n"
           << "    num_output: " << p.out_channels << "\n    kernel_size: "
           << p.kernel << "\n    stride: " << p.stride << "\n    pad: "
           << p.pad << "\n  }\n";
        break;
      }
      case nn::LayerKind::kPool: {
        const auto& p = l.pool();
        os << "  type: \"Pooling\"\n  pooling_param {\n    pool: "
           << (p.method == nn::PoolMethod::kMax ? "MAX" : "AVE")
           << "\n    kernel_size: " << p.kernel << "\n    stride: "
           << p.stride << "\n";
        if (p.pad) os << "    pad: " << p.pad << "\n";
        os << "  }\n";
        break;
      }
      case nn::LayerKind::kLrn: {
        const auto& p = l.lrn();
        os << "  type: \"LRN\"\n  lrn_param {\n    local_size: "
           << p.local_size << "\n    alpha: " << p.alpha << "\n    beta: "
           << p.beta << "\n  }\n";
        break;
      }
      case nn::LayerKind::kRelu:
        os << "  type: \"ReLU\"\n";
        break;
      case nn::LayerKind::kFullyConnected:
        os << "  type: \"InnerProduct\"\n  inner_product_param {\n"
           << "    num_output: " << l.fc().out_features << "\n  }\n";
        break;
      case nn::LayerKind::kSoftmax:
        os << "  type: \"Softmax\"\n";
        break;
      case nn::LayerKind::kInput:
        break;
    }
    os << "}\n";
    prev = l.name;
    // Emit the folded ReLU as an explicit in-place layer so round-trips
    // preserve activation semantics.
    if (l.kind == nn::LayerKind::kConv && l.conv().fused_relu) {
      os << "layer {\n  name: \"" << l.name << "_relu\"\n  type: \"ReLU\"\n"
         << "  bottom: \"" << l.name << "\"\n  top: \"" << l.name
         << "\"\n}\n";
    }
  }
  return os.str();
}

std::string alexnet_prototxt() {
  return export_prototxt(nn::alexnet());
}

std::string vgg_e_prototxt() {
  return export_prototxt(nn::vgg_e());
}

}  // namespace hetacc::caffe
