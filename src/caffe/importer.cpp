#include "caffe/importer.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "nn/model_zoo.h"
#include "support/error.h"

namespace hetacc::caffe {

namespace {

/// Checked double -> int conversion for dimension/parameter fields. The
/// blind static_cast this replaces was undefined behavior for the
/// overflowing literals a fuzzer (or a corrupted deploy file) produces.
int checked_dim(const Value& v, const char* what) {
  const double* d = std::get_if<double>(&v);
  if (!d) {
    throw ParseError(std::string("caffe import: ") + what +
                     " must be numeric");
  }
  if (!(std::floor(*d) == *d) || !(*d >= -2147483648.0) ||
      !(*d <= 2147483647.0)) {
    throw ParseError(std::string("caffe import: ") + what + " value " +
                     std::to_string(*d) + " is not a valid integer");
  }
  return static_cast<int>(*d);
}

/// Message::integer (already range-checked) narrowed to int.
int checked_int(const Message& p, const std::string& key, long long fallback,
                const char* what) {
  const long long v = p.integer(key, fallback);
  if (v < -2147483648ll || v > 2147483647ll) {
    throw ParseError(std::string("caffe import: ") + what + " field '" + key +
                     "' value " + std::to_string(v) + " overflows");
  }
  return static_cast<int>(v);
}

nn::Shape input_shape_of(const Message& root) {
  // Classic header: input: "data" + 4x input_dim (N, C, H, W).
  if (root.count("input_dim") == 4) {
    const auto& dims = root.all("input_dim");
    return nn::Shape{checked_dim(dims[1], "input_dim"),
                     checked_dim(dims[2], "input_dim"),
                     checked_dim(dims[3], "input_dim")};
  }
  // input_shape { dim: ... } header.
  if (const Message* is = root.child("input_shape")) {
    const auto& dims = is->all("dim");
    if (dims.size() == 4) {
      return nn::Shape{checked_dim(dims[1], "input_shape.dim"),
                       checked_dim(dims[2], "input_shape.dim"),
                       checked_dim(dims[3], "input_shape.dim")};
    }
  }
  // Modern style: layer { type: "Input" input_param { shape { dim ... } } }.
  for (const char* key : {"layer", "layers"}) {
    for (const Message* l : root.children(key)) {
      if (l->str("type") != "Input") continue;
      const Message* ip = l->child("input_param");
      const Message* shape = ip ? ip->child("shape") : nullptr;
      if (!shape) continue;
      const auto& dims = shape->all("dim");
      if (dims.size() != 4) {
        throw ParseError("caffe import: Input layer needs 4 dims");
      }
      return nn::Shape{checked_dim(dims[1], "input_param.shape.dim"),
                       checked_dim(dims[2], "input_param.shape.dim"),
                       checked_dim(dims[3], "input_param.shape.dim")};
    }
  }
  throw ParseError("caffe import: no input shape found");
}

int kernel_of(const Message& p, const char* what) {
  const int k = checked_int(p, "kernel_size", 0, what);
  if (k <= 0) {
    throw ParseError(std::string("caffe import: ") + what +
                     " without kernel_size");
  }
  return k;
}

}  // namespace

namespace {

/// A layer block lifted out of the parse tree: type, name, blob edges and
/// the source line for error reporting.
struct RawLayer {
  const Message* msg = nullptr;
  std::string type;
  std::string name;
  std::vector<std::string> bottoms;
  std::vector<std::string> tops;
  int line = 0;
};

std::vector<std::string> blob_list(const Message& m, const std::string& key,
                                   const std::string& layer_name, int line) {
  std::vector<std::string> out;
  if (!m.has(key)) return out;
  for (const Value& v : m.all(key)) {
    const std::string* s = std::get_if<std::string>(&v);
    if (!s) {
      throw ParseError("caffe import: " + key + " of layer '" + layer_name +
                           "' must be a quoted blob name",
                       line);
    }
    out.push_back(*s);
  }
  return out;
}

}  // namespace

nn::Network import_prototxt(std::string_view text) {
  const Message root = parse_prototxt(text);
  nn::Network net(root.str("name", "caffe-net"));
  net.input(input_shape_of(root));

  std::vector<const Message*> layers = root.children("layer");
  if (layers.empty()) layers = root.children("layers");

  // Pass 1: lift every layer block and record the full set of top names, so
  // an unresolved bottom can be diagnosed precisely: produced later in the
  // file (a cycle under declaration order) vs. never produced (dangling).
  std::vector<RawLayer> raw;
  raw.reserve(layers.size());
  std::map<std::string, int> top_decl_line;
  for (const Message* l : layers) {
    RawLayer r;
    r.msg = l;
    r.type = l->str("type");
    r.name = l->str("name", r.type);
    r.line = l->line();
    r.bottoms = blob_list(*l, "bottom", r.name, r.line);
    r.tops = blob_list(*l, "top", r.name, r.line);
    for (const std::string& t : r.tops) {
      top_decl_line.emplace(t, r.line);
    }
    raw.push_back(std::move(r));
  }

  // Blob name -> producing layer index in `net`. Caffe's implicit input blob
  // is always available; modern Input layers rebind their top to it.
  std::map<std::string, std::size_t> blob;
  blob["data"] = 0;

  auto resolve = [&](const RawLayer& r,
                     const std::string& b) -> std::size_t {
    auto it = blob.find(b);
    if (it != blob.end()) return it->second;
    auto later = top_decl_line.find(b);
    if (later != top_decl_line.end()) {
      throw ParseError("caffe import: bottom '" + b + "' of layer '" +
                           r.name + "' is produced later (line " +
                           std::to_string(later->second) +
                           ") — layers must be declared in topological "
                           "order (cyclic graph?)",
                       r.line);
    }
    throw ParseError("caffe import: dangling bottom '" + b + "' of layer '" +
                         r.name + "' (no earlier layer produces it)",
                     r.line);
  };

  // Binds layer `idx` as the producer of r's top blobs. A top may legally
  // rebind an existing blob only in-place (top appears among the bottoms);
  // two independent producers of one blob are a graph error.
  auto bind_tops = [&](const RawLayer& r, std::size_t idx) {
    for (const std::string& t : r.tops) {
      const bool in_place =
          std::find(r.bottoms.begin(), r.bottoms.end(), t) != r.bottoms.end();
      if (!in_place && blob.contains(t)) {
        throw ParseError("caffe import: duplicate top '" + t + "' (layer '" +
                             r.name + "' redefines a blob it does not "
                             "consume in-place)",
                         r.line);
      }
      blob[t] = idx;
    }
  };

  for (const RawLayer& r : raw) {
    if (r.type == "Input" || r.type == "Data") {
      // Shape header handled above; the top blob aliases the net input.
      bind_tops(r, 0);
      continue;
    }
    // Producer indices: explicit bottoms when present, otherwise the
    // previous layer (classic chain deploy files omit bottom/top).
    std::vector<std::size_t> ins;
    ins.reserve(std::max<std::size_t>(r.bottoms.size(), 1));
    for (const std::string& b : r.bottoms) ins.push_back(resolve(r, b));
    if (ins.empty()) ins.push_back(net.size() - 1);

    if (r.type == "Dropout") {  // inference no-op: alias top to bottom
      if (ins.size() != 1) {
        throw ParseError("caffe import: Dropout '" + r.name +
                             "' takes exactly one bottom",
                         r.line);
      }
      bind_tops(r, ins.front());
      continue;
    }

    const bool is_merge_type = r.type == "Concat" || r.type == "Eltwise";
    if (!is_merge_type && ins.size() != 1) {
      throw ParseError("caffe import: layer '" + r.name + "' of type '" +
                           r.type + "' takes exactly one bottom, got " +
                           std::to_string(ins.size()),
                       r.line);
    }
    if (r.tops.size() > 1) {
      throw ParseError("caffe import: layer '" + r.name +
                           "' has multiple tops (unsupported)",
                       r.line);
    }

    if (r.type == "Convolution") {
      const Message* p = r.msg->child("convolution_param");
      if (!p) {
        throw ParseError("caffe import: conv '" + r.name +
                             "' without convolution_param",
                         r.line);
      }
      const std::size_t idx =
          net.conv_from(ins.front(),
                        checked_int(*p, "num_output", 0, "Convolution"),
                        kernel_of(*p, "Convolution"),
                        checked_int(*p, "stride", 1, "Convolution"),
                        checked_int(*p, "pad", 0, "Convolution"), r.name,
                        /*fused_relu=*/false);
      bind_tops(r, idx);
    } else if (r.type == "ReLU") {
      // In-place ReLU folds into the producing conv (paper §7.2); "in
      // place" means top == bottom, or a classic chain file with neither.
      const std::size_t p = ins.front();
      const bool in_place = r.tops.empty() || r.tops == r.bottoms;
      if (in_place && net[p].kind == nn::LayerKind::kConv) {
        std::get<nn::ConvParam>(net[p].param).fused_relu = true;
        bind_tops(r, p);
      } else {
        const std::size_t idx = net.relu_from(p, r.name);
        bind_tops(r, idx);
      }
    } else if (r.type == "Pooling") {
      const Message* p = r.msg->child("pooling_param");
      if (!p) {
        throw ParseError("caffe import: pool '" + r.name +
                             "' without pooling_param",
                         r.line);
      }
      const std::string method = p->str("pool", "MAX");
      const int k = kernel_of(*p, "Pooling");
      const int stride = checked_int(*p, "stride", 1, "Pooling");
      const int pad = checked_int(*p, "pad", 0, "Pooling");
      std::size_t idx = 0;
      if (method == "MAX") {
        idx = net.max_pool_from(ins.front(), k, stride, r.name, pad);
      } else if (method == "AVE") {
        idx = net.avg_pool_from(ins.front(), k, stride, r.name, pad);
      } else {
        throw ParseError("caffe import: pool method '" + method +
                             "' unsupported",
                         r.line);
      }
      bind_tops(r, idx);
    } else if (r.type == "LRN") {
      const Message* p = r.msg->child("lrn_param");
      nn::LrnParam lp;
      lp.local_size = p ? checked_int(*p, "local_size", 5, "LRN") : 5;
      lp.alpha = p ? static_cast<float>(p->number("alpha", 1e-4)) : 1e-4f;
      lp.beta = p ? static_cast<float>(p->number("beta", 0.75)) : 0.75f;
      net.add_from(nn::Layer{nn::LayerKind::kLrn, r.name, lp, {}, {}},
                   {ins.front()});
      bind_tops(r, net.size() - 1);
    } else if (r.type == "InnerProduct") {
      const Message* p = r.msg->child("inner_product_param");
      if (!p) {
        throw ParseError("caffe import: fc '" + r.name +
                             "' without inner_product_param",
                         r.line);
      }
      nn::FcParam fp;
      fp.out_features = checked_int(*p, "num_output", 0, "InnerProduct");
      net.add_from(
          nn::Layer{nn::LayerKind::kFullyConnected, r.name, fp, {}, {}},
          {ins.front()});
      bind_tops(r, net.size() - 1);
    } else if (r.type == "Softmax" || r.type == "SoftmaxWithLoss") {
      net.add_from(nn::Layer{nn::LayerKind::kSoftmax, r.name,
                             nn::SoftmaxParam{}, {}, {}},
                   {ins.front()});
      bind_tops(r, net.size() - 1);
    } else if (r.type == "Concat") {
      if (const Message* p = r.msg->child("concat_param")) {
        const int axis = checked_int(*p, "axis", 1, "Concat");
        if (axis != 1) {
          throw ParseError("caffe import: Concat '" + r.name +
                               "' axis " + std::to_string(axis) +
                               " unsupported (only channel concat)",
                           r.line);
        }
      }
      if (ins.size() < 2) {
        throw ParseError("caffe import: Concat '" + r.name +
                             "' needs >= 2 bottoms",
                         r.line);
      }
      bind_tops(r, net.concat(ins, r.name));
    } else if (r.type == "Eltwise") {
      if (const Message* p = r.msg->child("eltwise_param")) {
        const std::string op = p->str("operation", "SUM");
        if (op != "SUM") {
          throw ParseError("caffe import: Eltwise '" + r.name +
                               "' operation " + op +
                               " unsupported (only SUM)",
                           r.line);
        }
      }
      if (ins.size() < 2) {
        throw ParseError("caffe import: Eltwise '" + r.name +
                             "' needs >= 2 bottoms",
                         r.line);
      }
      bind_tops(r, net.eltwise_add(ins, r.name));
    } else {
      throw ParseError("caffe import: unsupported layer type '" + r.type +
                           "' (layer '" + r.name + "')",
                       r.line);
    }
  }
  return net;
}

nn::Network import_prototxt_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open prototxt file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return import_prototxt(ss.str());
}

std::string export_prototxt(const nn::Network& net) {
  std::ostringstream os;
  os << "name: \"" << net.name() << "\"\n";
  for (std::size_t i = 0; i < net.size(); ++i) {
    const nn::Layer& l = net[i];
    if (l.kind == nn::LayerKind::kInput) {
      os << "input: \"data\"\n";
      os << "input_dim: 1\ninput_dim: " << l.out.c << "\ninput_dim: "
         << l.out.h << "\ninput_dim: " << l.out.w << "\n";
      continue;
    }
    os << "layer {\n  name: \"" << l.name << "\"\n";
    for (std::size_t u : l.inputs) {
      os << "  bottom: \""
         << (net[u].kind == nn::LayerKind::kInput ? std::string("data")
                                                  : net[u].name)
         << "\"\n";
    }
    os << "  top: \"" << l.name << "\"\n";
    switch (l.kind) {
      case nn::LayerKind::kConv: {
        const auto& p = l.conv();
        os << "  type: \"Convolution\"\n  convolution_param {\n"
           << "    num_output: " << p.out_channels << "\n    kernel_size: "
           << p.kernel << "\n    stride: " << p.stride << "\n    pad: "
           << p.pad << "\n  }\n";
        break;
      }
      case nn::LayerKind::kPool: {
        const auto& p = l.pool();
        os << "  type: \"Pooling\"\n  pooling_param {\n    pool: "
           << (p.method == nn::PoolMethod::kMax ? "MAX" : "AVE")
           << "\n    kernel_size: " << p.kernel << "\n    stride: "
           << p.stride << "\n";
        if (p.pad) os << "    pad: " << p.pad << "\n";
        os << "  }\n";
        break;
      }
      case nn::LayerKind::kLrn: {
        const auto& p = l.lrn();
        os << "  type: \"LRN\"\n  lrn_param {\n    local_size: "
           << p.local_size << "\n    alpha: " << p.alpha << "\n    beta: "
           << p.beta << "\n  }\n";
        break;
      }
      case nn::LayerKind::kRelu:
        os << "  type: \"ReLU\"\n";
        break;
      case nn::LayerKind::kFullyConnected:
        os << "  type: \"InnerProduct\"\n  inner_product_param {\n"
           << "    num_output: " << l.fc().out_features << "\n  }\n";
        break;
      case nn::LayerKind::kSoftmax:
        os << "  type: \"Softmax\"\n";
        break;
      case nn::LayerKind::kConcat:
        os << "  type: \"Concat\"\n  concat_param {\n    axis: 1\n  }\n";
        break;
      case nn::LayerKind::kEltwiseAdd:
        os << "  type: \"Eltwise\"\n  eltwise_param {\n"
           << "    operation: SUM\n  }\n";
        break;
      case nn::LayerKind::kInput:
        break;
    }
    os << "}\n";
    // Emit the folded ReLU as an explicit in-place layer so round-trips
    // preserve activation semantics.
    if (l.kind == nn::LayerKind::kConv && l.conv().fused_relu) {
      os << "layer {\n  name: \"" << l.name << "_relu\"\n  type: \"ReLU\"\n"
         << "  bottom: \"" << l.name << "\"\n  top: \"" << l.name
         << "\"\n}\n";
    }
  }
  return os.str();
}

std::string alexnet_prototxt() {
  return export_prototxt(nn::alexnet());
}

std::string vgg_e_prototxt() {
  return export_prototxt(nn::vgg_e());
}

}  // namespace hetacc::caffe
