#pragma once
// Caffe deploy-prototxt -> Network importer (paper Fig. 3's "Caffe Model"
// input). Supports the layer types the accelerator handles (Convolution,
// Pooling, LRN, ReLU, InnerProduct, Softmax, Concat, Eltwise SUM,
// Input/input_dim headers) on series-parallel graph topologies: bottom/top
// blob names become explicit producer edges, so Inception-style branches and
// ResNet-style skips import directly. Layers without bottom/top fall back to
// chain order (classic deploy files); in-place ReLU layers fold into their
// producing conv.

#include "caffe/prototxt.h"
#include "nn/network.h"

namespace hetacc::caffe {

/// Builds a network from prototxt text. Throws ParseError carrying the
/// offending layer's source line on graph errors (dangling bottoms,
/// duplicate tops, forward references / cycles) and unsupported constructs
/// (unknown types, non-SUM eltwise, non-channel concat, missing shapes).
[[nodiscard]] nn::Network import_prototxt(std::string_view text);

/// Reads the file and imports it.
[[nodiscard]] nn::Network import_prototxt_file(const std::string& path);

/// Serializes a Network back to deploy prototxt — round-trip support used
/// by tests and by the example that regenerates the bundled models.
[[nodiscard]] std::string export_prototxt(const nn::Network& net);

/// Bundled deploy descriptions of the evaluation networks (textually
/// equivalent to the public Caffe zoo files for the supported fields).
[[nodiscard]] std::string alexnet_prototxt();
[[nodiscard]] std::string vgg_e_prototxt();

}  // namespace hetacc::caffe
