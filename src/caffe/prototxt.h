#pragma once
// Minimal prototxt (protobuf text format) parser — enough of the grammar to
// read real Caffe deploy files: nested messages, repeated fields, strings,
// numbers, booleans and bare enum identifiers. The tool-flow's front door
// (paper Fig. 3 takes "Caffe configuration file" as input).

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace hetacc::caffe {

class Message;

/// A field value: scalar or nested message. Enums (MAX, AVE, ...) are kept
/// as strings.
using Value = std::variant<double, std::string, bool,
                           std::shared_ptr<Message>>;

class Message {
 public:
  void add(const std::string& key, Value v) { fields_[key].push_back(std::move(v)); }

  [[nodiscard]] bool has(const std::string& key) const {
    return fields_.contains(key);
  }
  [[nodiscard]] std::size_t count(const std::string& key) const {
    auto it = fields_.find(key);
    return it == fields_.end() ? 0 : it->second.size();
  }
  [[nodiscard]] const std::vector<Value>& all(const std::string& key) const;

  // Typed accessors with defaults; throw std::runtime_error on a present
  // field of the wrong type.
  [[nodiscard]] double number(const std::string& key, double fallback) const;
  [[nodiscard]] long long integer(const std::string& key, long long fallback) const;
  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] const Message* child(const std::string& key) const;
  [[nodiscard]] std::vector<const Message*> children(
      const std::string& key) const;

  [[nodiscard]] const std::map<std::string, std::vector<Value>>& fields() const {
    return fields_;
  }

  /// Source line of the field that opened this message (1-based; 0 for the
  /// root). Importers use it to report graph errors — dangling bottoms,
  /// duplicate tops — against the offending layer block.
  [[nodiscard]] int line() const { return line_; }
  void set_line(int line) { line_ = line; }

 private:
  std::map<std::string, std::vector<Value>> fields_;
  int line_ = 0;
};

/// Parses prototxt text. Throws std::runtime_error with line information on
/// malformed input.
[[nodiscard]] Message parse_prototxt(std::string_view text);

}  // namespace hetacc::caffe
