#pragma once
// Deterministic, seeded fault injection for the dataflow simulator and the
// DDR timeline: SEU bit flips in line-buffer BRAM rows, resident weight
// panels and DDR bursts, corrupted or delayed FIFO pushes, engine pipeline
// stalls, and a deterministic FIFO wedge that drives the watchdog path.
//
// Design rules:
//  * Counter-based randomness: every decision is a pure hash of
//    (seed, site, stream, event), so outcomes do not depend on call order,
//    thread interleaving or how many other sites fired — a campaign with the
//    same seed reproduces bit-for-bit.
//  * Zero-cost when absent: every hook in arch/ guards on a null
//    FaultInjector pointer; with no plan installed the simulators are
//    byte-identical to the unhooked code (verified by test_fault).

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace hetacc::fault {

/// Where a fault strikes. The functional sites corrupt simulated data; the
/// timing sites perturb the event simulator's clock.
enum class FaultSite : std::uint8_t {
  kDdrBurst,     ///< bit flip in a DDR read/write burst
  kLineBuffer,   ///< SEU in a BRAM line-buffer row
  kWeightPanel,  ///< SEU in a resident packed-weight panel
  kFifoPush,     ///< corrupted inter-layer FIFO push
  kFifoDelay,    ///< delayed FIFO push (timing only)
  kEngineStall,  ///< engine pipeline stall (timing only)
};
inline constexpr std::size_t kFaultSiteCount = 6;

[[nodiscard]] std::string_view to_string(FaultSite s);

/// Per-site injection rates plus the seed. All rates are per-event
/// probabilities in [0, 1]: per burst, per pushed row, per panel, per push,
/// per emitted block respectively.
struct FaultPlan {
  std::uint64_t seed = 1;

  double ddr_burst_flip_rate = 0.0;
  double line_buffer_flip_rate = 0.0;
  double weight_panel_flip_rate = 0.0;
  double fifo_corrupt_rate = 0.0;

  double fifo_delay_rate = 0.0;
  double fifo_delay_cycles = 0.0;
  double engine_stall_rate = 0.0;
  long long engine_stall_cycles = 0;

  /// Deterministic deadlock: FIFO channel `wedge_channel` refuses all
  /// traffic once it has accepted `wedge_after_pushes` rows. Exercises the
  /// DATAFLOW watchdog (a real AXI-stream stall looks exactly like this).
  int wedge_channel = -1;
  long long wedge_after_pushes = 0;

  /// True if any functional-corruption site can fire.
  [[nodiscard]] bool any_functional() const {
    return ddr_burst_flip_rate > 0.0 || line_buffer_flip_rate > 0.0 ||
           weight_panel_flip_rate > 0.0 || fifo_corrupt_rate > 0.0;
  }
};

/// Identity of an escalated (unrecovered) fault: which site struck which
/// stream/event, and how many recovery attempts were spent first. This is
/// the payload the serving layer and the campaign report need to say *what*
/// failed instead of just that something did.
struct FaultIdentity {
  FaultSite site = FaultSite::kDdrBurst;
  std::uint64_t stream = 0;  ///< channel / layer / transaction index
  std::uint64_t event = 0;   ///< push / panel / burst index within the stream
  int attempts = 0;          ///< recovery attempts consumed before escalating
  bool valid = false;

  [[nodiscard]] std::string describe() const;
};

/// Copyable snapshot of an injector's counters.
struct FaultStats {
  std::array<long long, kFaultSiteCount> injected{};
  long long detected = 0;
  long long recovered = 0;
  long long unrecovered = 0;
  /// Identity of the first unrecovered fault since install/reset_stats
  /// (valid=false while unrecovered == 0).
  FaultIdentity first_unrecovered;

  [[nodiscard]] long long total_injected() const {
    long long n = 0;
    for (const long long v : injected) n += v;
    return n;
  }
};

/// Stateless-decision fault source plus thread-safe result counters. One
/// injector is shared by every hooked component of a simulation run.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Pure decision: does the fault at `site` strike event `event` of stream
  /// `stream`? Identical (seed, site, stream, event) always agree.
  [[nodiscard]] bool decide(FaultSite site, std::uint64_t stream,
                            std::uint64_t event) const;

  /// Deterministic 64-bit noise for choosing bit positions / elements.
  [[nodiscard]] std::uint64_t noise(FaultSite site, std::uint64_t stream,
                                    std::uint64_t event,
                                    std::uint64_t salt) const;

  /// If decide() fires, flips one hash-chosen bit of one hash-chosen element
  /// and counts the injection. Returns true iff a flip happened.
  bool maybe_corrupt_row(FaultSite site, std::uint64_t stream,
                         std::uint64_t event, float* data,
                         std::size_t count) const;

  /// Byte-buffer variant (DDR burst images). Flips a single bit.
  bool maybe_corrupt_bytes(FaultSite site, std::uint64_t stream,
                           std::uint64_t event, unsigned char* data,
                           std::size_t count) const;

  // Detection/recovery accounting (driven by the protection layer).
  void count_injected(FaultSite site) const {
    injected_[static_cast<std::size_t>(site)].fetch_add(
        1, std::memory_order_relaxed);
  }
  void count_detected() const {
    detected_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_recovered() const {
    recovered_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_unrecovered() const {
    unrecovered_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Escalation flavor: counts the unrecovered fault *and* records its
  /// identity (first writer wins) so stats().first_unrecovered can name it.
  void count_unrecovered(FaultSite site, std::uint64_t stream,
                         std::uint64_t event, int attempts) const;

  [[nodiscard]] FaultStats stats() const;
  void reset_stats();

 private:
  FaultPlan plan_;
  mutable std::array<std::atomic<long long>, kFaultSiteCount> injected_{};
  mutable std::atomic<long long> detected_{0};
  mutable std::atomic<long long> recovered_{0};
  mutable std::atomic<long long> unrecovered_{0};
  mutable std::mutex first_unrecovered_mu_;
  mutable FaultIdentity first_unrecovered_;
};

/// Flips bit `bit % 32` of the IEEE-754 image of `v` (a single-event upset;
/// sign, exponent and mantissa are all fair game, as in real BRAM).
[[nodiscard]] float flip_float_bit(float v, std::uint32_t bit);

}  // namespace hetacc::fault
