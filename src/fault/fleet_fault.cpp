#include "fault/fleet_fault.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"

namespace hetacc::fault {

namespace {

/// splitmix64 finalizer — the counter-hash primitive the whole fault layer
/// uses, so campaign construction is a pure function of (spec, seed).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Jitter in [lo, hi) hashed from (seed, salt) — strike cycles wobble with
/// the seed but the campaign shape (which faults, which targets) does not.
long long jitter(std::uint64_t seed, std::uint64_t salt, long long lo,
                 long long hi) {
  const std::uint64_t h = mix64(seed ^ mix64(salt));
  return lo + static_cast<long long>(
                  h % static_cast<std::uint64_t>(hi - lo > 0 ? hi - lo : 1));
}

}  // namespace

std::string_view to_string(FleetFaultKind k) {
  switch (k) {
    case FleetFaultKind::kWedge: return "wedge";
    case FleetFaultKind::kCrash: return "crash";
    case FleetFaultKind::kSlow: return "slow";
    case FleetFaultKind::kCorruptBundle: return "corrupt-bundle";
  }
  return "?";
}

std::string FleetFaultEvent::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " model " << model;
  if (kind == FleetFaultKind::kCorruptBundle) {
    os << " rung " << rung;
  } else {
    os << " replica " << replica;
  }
  os << " @ cycle " << cycle;
  if (kind == FleetFaultKind::kSlow) {
    os << " (x" << slow_factor << ")";
  }
  return os.str();
}

void FleetFaultPlan::normalize() {
  std::sort(events.begin(), events.end(),
            [](const FleetFaultEvent& a, const FleetFaultEvent& b) {
              if (a.cycle != b.cycle) return a.cycle < b.cycle;
              if (a.model != b.model) return a.model < b.model;
              if (a.replica != b.replica) return a.replica < b.replica;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
}

FleetFaultPlan make_fleet_campaign(const std::string& spec, std::uint64_t seed,
                                   std::size_t models, int replicas,
                                   long long service_scale) {
  if (models == 0 || replicas < 1 || service_scale < 1) {
    throw ValidationError(
        "fleet campaign needs >= 1 model, >= 1 replica and a positive "
        "service scale");
  }
  bool wedge = false, crash = false, slow = false, corrupt = false;
  {
    std::istringstream is(spec);
    std::string tok;
    bool any = false;
    while (std::getline(is, tok, '+')) {
      if (tok.empty()) continue;
      any = true;
      if (tok == "wedge") {
        wedge = true;
      } else if (tok == "crash") {
        crash = true;
      } else if (tok == "slow") {
        slow = true;
      } else if (tok == "corrupt") {
        corrupt = true;
      } else if (tok == "mix") {
        wedge = crash = slow = corrupt = true;
      } else {
        throw ParseError("unknown fleet-chaos token '" + tok +
                         "' (want wedge|crash|slow|corrupt|mix, '+'-joined)");
      }
    }
    if (!any) {
      throw ParseError("empty fleet-chaos plan '" + spec + "'");
    }
  }

  // Strikes land early enough in the trace that recovery (quarantine,
  // respawn, probation, readmission) happens while load is still arriving —
  // that is what the acceptance greps assert. Targets spread across models
  // and replica slots so multi-model fleets exercise more than one domain.
  FleetFaultPlan plan;
  plan.seed = seed;
  const long long s = service_scale;
  if (corrupt) {
    FleetFaultEvent e;
    e.kind = FleetFaultKind::kCorruptBundle;
    e.cycle = 6 * s + jitter(seed, 0xC0, 0, 2 * s);
    e.model = 0;
    e.rung = -1;  // resolved to the model's home rung by the fleet
    plan.events.push_back(e);
  }
  if (slow) {
    FleetFaultEvent e;
    e.kind = FleetFaultKind::kSlow;
    e.cycle = 10 * s + jitter(seed, 0x51, 0, 2 * s);
    e.model = models > 2 ? 2 : 0;
    e.replica = replicas > 1 ? 1 : 0;
    e.slow_factor = 3.0;
    e.slow_duration = 0;  // sick until the health window quarantines it
    plan.events.push_back(e);
  }
  if (wedge) {
    FleetFaultEvent e;
    e.kind = FleetFaultKind::kWedge;
    e.cycle = 14 * s + jitter(seed, 0x3D, 0, 2 * s);
    e.model = 0;
    e.replica = 0;
    plan.events.push_back(e);
  }
  if (crash) {
    FleetFaultEvent e;
    e.kind = FleetFaultKind::kCrash;
    e.cycle = 22 * s + jitter(seed, 0xCA, 0, 2 * s);
    e.model = models > 1 ? 1 : 0;
    e.replica = replicas > 1 ? replicas - 1 : 0;
    plan.events.push_back(e);
  }
  plan.normalize();
  return plan;
}

}  // namespace hetacc::fault
