#pragma once
// Protection/hardening configuration: which detectors are instantiated and
// how recovery behaves. Header-only so fpga/ and cost/ can read it without a
// link dependency; the resource and cycle *prices* of these choices live in
// fpga::EngineModelParams and cost:: (the single accounting layer), exactly
// like every other modeled hardware feature.

#include <cstdint>

namespace hetacc::fault {

/// What the hardened design instantiates. All on by default once protection
/// is enabled; the campaign runner flips individual detectors off to measure
/// their coverage contribution.
struct ProtectionConfig {
  bool enabled = false;

  bool crc_ddr = true;        ///< CRC-32 per DDR burst, checked on arrival
  bool crc_weights = true;    ///< CRC-32 over resident packed weight panels
  bool wino_checksum = true;  ///< column checksum on transformed filters
  bool watchdog = true;       ///< DATAFLOW stall detector naming the stage

  /// Corrupted bursts are re-read up to this many times before the design
  /// raises an unrecoverable-fault interrupt.
  int retry_limit = 2;

  /// DDR burst granularity the CRC is computed over (AXI burst payload).
  long long burst_bytes = 4096;

  [[nodiscard]] static ProtectionConfig all_on() {
    ProtectionConfig c;
    c.enabled = true;
    return c;
  }
};

}  // namespace hetacc::fault
