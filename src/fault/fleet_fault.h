#pragma once
// Fleet-scale fault domains: a seeded, *virtual-time* plan of replica- and
// cache-level fault events for the serving fleet (DESIGN.md §16). Where
// FaultPlan (fault.h) strikes inside one pipeline — SEUs, FIFO corruption,
// engine stalls — FleetFaultPlan strikes whole replicas and the shared
// prepack cache:
//
//   kWedge   the replica stops completing work: its in-flight batch never
//            finishes and it accepts nothing new. Detected by the fleet's
//            watchdog (a batch overdue past watchdog_factor x its nominal
//            service time), exactly like the DATAFLOW watchdog names a
//            wedged FIFO stage.
//   kCrash   the replica dies instantly: in-flight work is lost on the spot
//            and detection is immediate (the virtual machine-check).
//   kSlow    a service-time multiplier (a sick-but-alive replica: thermal
//            throttle, failing DDR lane). Invisible to any single request;
//            detected statistically by the rolling deadline-miss window.
//   kCorruptBundle  a bit flip in the shared prepack cache's resident copy
//            of one (model, rung) bundle. Detected by the bundle CRC on the
//            next lease and scrubbed (re-derived) privately so peers are
//            never invalidated.
//
// Determinism contract: a plan is pure data — every event carries the exact
// virtual cycle it strikes at, and the fleet's single dispatcher applies it
// as just another event source in its discrete-event loop. A campaign with
// the same (plan, seed, traces, config) reproduces byte-for-byte for any
// worker-thread count; the seed only jitters the *construction* of canned
// campaigns, never their application.

#include <cstdint>
#include <string>
#include <vector>

namespace hetacc::fault {

enum class FleetFaultKind : std::uint8_t {
  kWedge,
  kCrash,
  kSlow,
  kCorruptBundle,
};

[[nodiscard]] std::string_view to_string(FleetFaultKind k);

/// One fleet-level fault event. `replica` is the dense per-model replica id
/// (FleetServer spawns ids 0, 1, ... in spawn order); `rung` is only read by
/// kCorruptBundle. Events targeting a replica that does not exist, or is
/// not currently healthy (quarantined, in probation, spinning up, retired),
/// are no-ops — the plan stays valid for any autoscale trajectory.
struct FleetFaultEvent {
  long long cycle = 0;
  FleetFaultKind kind = FleetFaultKind::kWedge;
  std::size_t model = 0;
  int replica = 0;
  int rung = -1;              ///< kCorruptBundle: rung index; -1 = the
                              ///< model's home rung (fleet resolves it)
  double slow_factor = 3.0;   ///< kSlow: service-time multiplier (> 1)
  long long slow_duration = 0;  ///< kSlow: cycles of sickness; 0 = until
                                ///< quarantine clears it

  [[nodiscard]] std::string describe() const;
};

/// The whole campaign: events sorted by (cycle, model, replica, kind) so the
/// dispatcher can consume them as a merged event stream.
struct FleetFaultPlan {
  std::uint64_t seed = 1;
  std::vector<FleetFaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  /// Sorts events into the canonical application order.
  void normalize();
};

/// Deterministic canned campaigns for `hetacc --fleet-chaos PLAN[:SEED]` and
/// the CI soak. `spec` is a '+'-joined subset of {wedge, crash, slow,
/// corrupt} or "mix" (all four). Strike cycles are placed at seeded-jittered
/// multiples of `service_scale` (the fleet's largest home-rung service time)
/// so the same spec scales to any model mix; `models` and `replicas` bound
/// the targets. Throws hetacc::ParseError on an unknown token.
[[nodiscard]] FleetFaultPlan make_fleet_campaign(const std::string& spec,
                                                 std::uint64_t seed,
                                                 std::size_t models,
                                                 int replicas,
                                                 long long service_scale);

}  // namespace hetacc::fault
