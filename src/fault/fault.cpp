#include "fault/fault.h"

#include <cstring>

namespace hetacc::fault {

std::string_view to_string(FaultSite s) {
  switch (s) {
    case FaultSite::kDdrBurst: return "ddr_burst";
    case FaultSite::kLineBuffer: return "line_buffer";
    case FaultSite::kWeightPanel: return "weight_panel";
    case FaultSite::kFifoPush: return "fifo_push";
    case FaultSite::kFifoDelay: return "fifo_delay";
    case FaultSite::kEngineStall: return "engine_stall";
  }
  return "?";
}

namespace {

/// splitmix64 finalizer — a full-avalanche mix of the event coordinates.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t event_hash(std::uint64_t seed, FaultSite site,
                                   std::uint64_t stream, std::uint64_t event,
                                   std::uint64_t salt) {
  std::uint64_t h = mix64(seed ^ 0xA0761D6478BD642Full);
  h = mix64(h ^ (static_cast<std::uint64_t>(site) + 1));
  h = mix64(h ^ stream);
  h = mix64(h ^ event);
  if (salt != 0) h = mix64(h ^ salt);
  return h;
}

double rate_of(const FaultPlan& p, FaultSite s) {
  switch (s) {
    case FaultSite::kDdrBurst: return p.ddr_burst_flip_rate;
    case FaultSite::kLineBuffer: return p.line_buffer_flip_rate;
    case FaultSite::kWeightPanel: return p.weight_panel_flip_rate;
    case FaultSite::kFifoPush: return p.fifo_corrupt_rate;
    case FaultSite::kFifoDelay: return p.fifo_delay_rate;
    case FaultSite::kEngineStall: return p.engine_stall_rate;
  }
  return 0.0;
}

}  // namespace

bool FaultInjector::decide(FaultSite site, std::uint64_t stream,
                           std::uint64_t event) const {
  const double rate = rate_of(plan_, site);
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  const std::uint64_t h = event_hash(plan_.seed, site, stream, event, 0);
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < rate;
}

std::uint64_t FaultInjector::noise(FaultSite site, std::uint64_t stream,
                                   std::uint64_t event,
                                   std::uint64_t salt) const {
  return event_hash(plan_.seed, site, stream, event, salt | 1);
}

float flip_float_bit(float v, std::uint32_t bit) {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  u ^= (1u << (bit & 31u));
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

bool FaultInjector::maybe_corrupt_row(FaultSite site, std::uint64_t stream,
                                      std::uint64_t event, float* data,
                                      std::size_t count) const {
  if (count == 0 || !decide(site, stream, event)) return false;
  const std::uint64_t n = noise(site, stream, event, 2);
  const std::size_t idx = static_cast<std::size_t>(n % count);
  data[idx] = flip_float_bit(data[idx],
                             static_cast<std::uint32_t>((n >> 32) & 31u));
  count_injected(site);
  return true;
}

bool FaultInjector::maybe_corrupt_bytes(FaultSite site, std::uint64_t stream,
                                        std::uint64_t event,
                                        unsigned char* data,
                                        std::size_t count) const {
  if (count == 0 || !decide(site, stream, event)) return false;
  const std::uint64_t n = noise(site, stream, event, 3);
  const std::size_t idx = static_cast<std::size_t>(n % count);
  data[idx] ^= static_cast<unsigned char>(1u << ((n >> 32) & 7u));
  count_injected(site);
  return true;
}

std::string FaultIdentity::describe() const {
  if (!valid) return "none";
  std::string s(to_string(site));
  s += " stream " + std::to_string(stream) + " event " +
       std::to_string(event);
  if (attempts > 0) {
    s += " after " + std::to_string(attempts) + " recovery attempts";
  }
  return s;
}

void FaultInjector::count_unrecovered(FaultSite site, std::uint64_t stream,
                                      std::uint64_t event,
                                      int attempts) const {
  count_unrecovered();
  const std::lock_guard<std::mutex> lock(first_unrecovered_mu_);
  if (first_unrecovered_.valid) return;
  first_unrecovered_.site = site;
  first_unrecovered_.stream = stream;
  first_unrecovered_.event = event;
  first_unrecovered_.attempts = attempts;
  first_unrecovered_.valid = true;
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    s.injected[i] = injected_[i].load(std::memory_order_relaxed);
  }
  s.detected = detected_.load(std::memory_order_relaxed);
  s.recovered = recovered_.load(std::memory_order_relaxed);
  s.unrecovered = unrecovered_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(first_unrecovered_mu_);
    s.first_unrecovered = first_unrecovered_;
  }
  return s;
}

void FaultInjector::reset_stats() {
  for (auto& a : injected_) a.store(0, std::memory_order_relaxed);
  detected_.store(0, std::memory_order_relaxed);
  recovered_.store(0, std::memory_order_relaxed);
  unrecovered_.store(0, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(first_unrecovered_mu_);
  first_unrecovered_ = FaultIdentity{};
}

}  // namespace hetacc::fault
