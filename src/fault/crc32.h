#pragma once
// CRC-32 (IEEE 802.3 polynomial, reflected, table-driven) — the checksum the
// protection layer attaches to DDR bursts and packed weight panels. CRC-32
// detects every single-bit error and every burst error up to 32 bits, which
// is exactly the SEU model the fault layer injects; test_fault exhaustively
// verifies the single-bit property.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hetacc::fault {

/// CRC-32 of `n` bytes. `seed` allows incremental checksumming: feed the
/// previous call's return value to continue a running CRC.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n,
                                  std::uint32_t seed = 0);

/// CRC-32 over the byte image of a float span (the form the line-buffer and
/// weight-panel checks use).
[[nodiscard]] std::uint32_t crc32_f32(const float* data, std::size_t count,
                                      std::uint32_t seed = 0);

[[nodiscard]] inline std::uint32_t crc32_f32(const std::vector<float>& v,
                                             std::uint32_t seed = 0) {
  return crc32_f32(v.data(), v.size(), seed);
}

}  // namespace hetacc::fault
