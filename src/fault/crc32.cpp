#include "fault/crc32.h"

#include <array>

namespace hetacc::fault {

namespace {

/// Reflected CRC-32 table for polynomial 0xEDB88320, built at static init.
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto& t = table();
  for (std::size_t i = 0; i < n; ++i) {
    c = t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32_f32(const float* data, std::size_t count,
                        std::uint32_t seed) {
  return crc32(data, count * sizeof(float), seed);
}

}  // namespace hetacc::fault
