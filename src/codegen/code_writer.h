#pragma once
// Tiny indenting source writer used by the HLS code generator.

#include <sstream>
#include <string>

namespace hetacc::codegen {

class CodeWriter {
 public:
  /// Writes one line at the current indent. Empty string -> blank line.
  CodeWriter& line(const std::string& s = "") {
    if (!s.empty()) {
      for (int i = 0; i < indent_; ++i) os_ << "  ";
      os_ << s;
    }
    os_ << '\n';
    return *this;
  }
  /// Writes a line and increases the indent (e.g. "for (...) {").
  CodeWriter& open(const std::string& s) {
    line(s);
    ++indent_;
    return *this;
  }
  /// Decreases the indent and writes a line (default "}").
  CodeWriter& close(const std::string& s = "}") {
    --indent_;
    line(s);
    return *this;
  }
  /// Raw pragma — never indented (HLS convention).
  CodeWriter& pragma(const std::string& s) {
    os_ << "#pragma HLS " << s << '\n';
    return *this;
  }

  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
  int indent_ = 0;
};

}  // namespace hetacc::codegen
