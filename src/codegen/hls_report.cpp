#include "codegen/hls_report.h"

#include <sstream>
#include <stdexcept>

#include "cost/group_timing.h"

namespace hetacc::codegen {

namespace {

std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

/// Minimal XML helpers for the report's flat element structure.
std::string tag(const std::string& name, const std::string& body,
                int indent) {
  return std::string(static_cast<std::size_t>(indent), ' ') + "<" + name +
         ">" + body + "</" + name + ">\n";
}

std::string find_tag(const std::string& xml, const std::string& name,
                     std::size_t from, std::size_t to, bool required) {
  const std::string open = "<" + name + ">";
  const std::string close = "</" + name + ">";
  const std::size_t a = xml.find(open, from);
  if (a == std::string::npos || a >= to) {
    if (required) {
      throw std::runtime_error("hls report: missing <" + name + ">");
    }
    return "";
  }
  const std::size_t b = xml.find(close, a);
  if (b == std::string::npos || b > to) {
    throw std::runtime_error("hls report: unterminated <" + name + ">");
  }
  return xml.substr(a + open.size(), b - a - open.size());
}

long long to_ll(const std::string& s, const char* what) {
  try {
    return std::stoll(s);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("hls report: bad number in ") +
                             what + ": '" + s + "'");
  }
}

}  // namespace

fpga::ResourceVector HlsReport::total_resources() const {
  fpga::ResourceVector total;
  for (const auto& m : modules) {
    // Group tops aggregate their layer modules; count leaf modules only.
    if (m.name.rfind("group", 0) == 0 &&
        m.name.find("_top") != std::string::npos) {
      continue;
    }
    total += m.resources;
  }
  return total;
}

HlsReport make_report(const nn::Network& net, const core::Strategy& strategy,
                      const fpga::Device& dev) {
  HlsReport r;
  r.design = net.name();
  r.part = dev.chip;
  r.clock_ns = 1e9 / dev.frequency_hz;
  for (std::size_t gi = 0; gi < strategy.groups.size(); ++gi) {
    const auto& g = strategy.groups[gi];
    ModuleReport top;
    top.name = "group" + std::to_string(gi) + "_top";
    top.resources = cost::aggregate_resources(g.impls);
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const nn::Layer& l = net[g.first + k];
      ModuleReport m;
      m.name = "layer_" + sanitize(l.name);
      m.resources = g.impls[k].res;
      m.latency_cycles = cost::engine_latency_cycles(g.impls[k]);
      top.latency_cycles = std::max(top.latency_cycles, m.latency_cycles);
      r.modules.push_back(std::move(m));
    }
    r.modules.push_back(std::move(top));
  }
  return r;
}

std::string to_xml(const HlsReport& r) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\"?>\n<profile>\n";
  os << tag("design", r.design, 2);
  os << tag("part", r.part, 2);
  os << tag("clock_ns", std::to_string(r.clock_ns), 2);
  for (const auto& m : r.modules) {
    os << "  <module>\n";
    os << tag("name", m.name, 4);
    os << tag("bram_18k", std::to_string(m.resources.bram18k), 4);
    os << tag("dsp48e", std::to_string(m.resources.dsp), 4);
    os << tag("ff", std::to_string(m.resources.ff), 4);
    os << tag("lut", std::to_string(m.resources.lut), 4);
    os << tag("latency", std::to_string(m.latency_cycles), 4);
    os << "  </module>\n";
  }
  os << "</profile>\n";
  return os.str();
}

HlsReport parse_report_xml(const std::string& xml) {
  if (xml.find("<profile>") == std::string::npos) {
    throw std::runtime_error("hls report: no <profile> root");
  }
  HlsReport r;
  r.design = find_tag(xml, "design", 0, xml.size(), true);
  r.part = find_tag(xml, "part", 0, xml.size(), true);
  const std::string clock = find_tag(xml, "clock_ns", 0, xml.size(), false);
  if (!clock.empty()) r.clock_ns = std::stod(clock);

  std::size_t pos = 0;
  while (true) {
    const std::size_t a = xml.find("<module>", pos);
    if (a == std::string::npos) break;
    const std::size_t b = xml.find("</module>", a);
    if (b == std::string::npos) {
      throw std::runtime_error("hls report: unterminated <module>");
    }
    ModuleReport m;
    m.name = find_tag(xml, "name", a, b, true);
    m.resources.bram18k = to_ll(find_tag(xml, "bram_18k", a, b, true),
                                "bram_18k");
    m.resources.dsp = to_ll(find_tag(xml, "dsp48e", a, b, true), "dsp48e");
    m.resources.ff = to_ll(find_tag(xml, "ff", a, b, true), "ff");
    m.resources.lut = to_ll(find_tag(xml, "lut", a, b, true), "lut");
    m.latency_cycles = to_ll(find_tag(xml, "latency", a, b, true), "latency");
    r.modules.push_back(std::move(m));
    pos = b;
  }
  return r;
}

namespace {
double rel(double measured, double modeled) {
  if (modeled == 0.0) return measured == 0.0 ? 0.0 : 1.0;
  return (measured - modeled) / modeled;
}
}  // namespace

ReportDelta compare_reports(const HlsReport& modeled,
                            const HlsReport& measured) {
  const auto a = modeled.total_resources();
  const auto b = measured.total_resources();
  ReportDelta d;
  d.bram = rel(static_cast<double>(b.bram18k), static_cast<double>(a.bram18k));
  d.dsp = rel(static_cast<double>(b.dsp), static_cast<double>(a.dsp));
  d.ff = rel(static_cast<double>(b.ff), static_cast<double>(a.ff));
  d.lut = rel(static_cast<double>(b.lut), static_cast<double>(a.lut));
  long long lat_a = 0, lat_b = 0;
  for (const auto& m : modeled.modules) {
    lat_a = std::max(lat_a, m.latency_cycles);
  }
  for (const auto& m : measured.modules) {
    lat_b = std::max(lat_b, m.latency_cycles);
  }
  d.latency = rel(static_cast<double>(lat_b), static_cast<double>(lat_a));
  return d;
}

}  // namespace hetacc::codegen
