#include "codegen/generator.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "algo/winograd_conv.h"
#include "codegen/code_writer.h"
#include "fixed/fixed16.h"

namespace hetacc::codegen {

namespace {

std::string fnum(double v) {
  std::ostringstream os;
  os << std::setprecision(9) << v;
  std::string s = os.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos) {
    s += ".0";
  }
  return s + "f";
}

std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), 'l');
  }
  return out;
}

/// Per-layer numeric configuration threaded through the emitters.
struct LayerNumeric {
  bool fixed = false;
  int in_frac = 0;
  int out_frac = 0;
};

float filter_max_abs(const nn::FilterBank& f) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < f.size(); ++i) {
    m = std::max(m, std::abs(f.data()[i]));
  }
  return std::max(m, 1e-6f);
}

// ---------------------------------------------------------------- weights --
void emit_filter_array_float(CodeWriter& w, const nn::FilterBank& f,
                             const std::vector<float>& bias) {
  w.open("static const data_t weights[N][M][K][K] = {");
  for (int n = 0; n < f.out_channels(); ++n) {
    std::ostringstream row;
    row << "{";
    for (int m = 0; m < f.in_channels(); ++m) {
      row << "{";
      for (int u = 0; u < f.kernel(); ++u) {
        row << "{";
        for (int v = 0; v < f.kernel(); ++v) {
          row << fnum(f.at(n, m, u, v));
          if (v + 1 < f.kernel()) row << ", ";
        }
        row << "}";
        if (u + 1 < f.kernel()) row << ", ";
      }
      row << "}";
      if (m + 1 < f.in_channels()) row << ", ";
    }
    row << "},";
    w.line(row.str());
  }
  w.close("};");
  std::ostringstream b;
  b << "static const acc_t bias[N] = {";
  for (int n = 0; n < f.out_channels(); ++n) {
    b << fnum(bias.empty() ? 0.0f : bias[n]);
    if (n + 1 < f.out_channels()) b << ", ";
  }
  b << "};";
  w.line(b.str());
}

/// Fixed mode: weights baked as raw Q(w_frac) int16, bias pre-scaled into
/// the Q(in_frac + w_frac) accumulator domain.
void emit_filter_array_fixed(CodeWriter& w, const nn::FilterBank& f,
                             const std::vector<float>& bias, int w_frac,
                             int acc_frac) {
  w.open("static const data_t weights[N][M][K][K] = {");
  for (int n = 0; n < f.out_channels(); ++n) {
    std::ostringstream row;
    row << "{";
    for (int m = 0; m < f.in_channels(); ++m) {
      row << "{";
      for (int u = 0; u < f.kernel(); ++u) {
        row << "{";
        for (int v = 0; v < f.kernel(); ++v) {
          row << fixed::Fixed16::quantize(f.at(n, m, u, v), w_frac);
          if (v + 1 < f.kernel()) row << ", ";
        }
        row << "}";
        if (u + 1 < f.kernel()) row << ", ";
      }
      row << "}";
      if (m + 1 < f.in_channels()) row << ", ";
    }
    row << "},";
    w.line(row.str());
  }
  w.close("};");
  std::ostringstream b;
  b << "static const acc_t bias[N] = {";
  for (int n = 0; n < f.out_channels(); ++n) {
    const double val = bias.empty() ? 0.0 : bias[n];
    b << static_cast<long long>(
        std::llround(val * std::ldexp(1.0, acc_frac)));
    b << "LL";
    if (n + 1 < f.out_channels()) b << ", ";
  }
  b << "};";
  w.line(b.str());
}

void emit_matrix_array(CodeWriter& w, const std::string& decl,
                       const algo::Matrix& m) {
  w.open(decl + " = {");
  for (int r = 0; r < m.rows(); ++r) {
    std::ostringstream row;
    row << "{";
    for (int c = 0; c < m.cols(); ++c) {
      row << fnum(m.at(r, c));
      if (c + 1 < m.cols()) row << ", ";
    }
    row << "},";
    w.line(row.str());
  }
  w.close("};");
}

// ----------------------------------------------------------- shared parts --
void emit_conv_constants(CodeWriter& w, const nn::Layer& l) {
  const auto& p = l.conv();
  w.line("constexpr int M = " + std::to_string(l.in.c) + ", N = " +
         std::to_string(l.out.c) + ", K = " + std::to_string(p.kernel) +
         ", S = " + std::to_string(p.stride) + ", P = " +
         std::to_string(p.pad) + ";");
  w.line("constexpr int H = " + std::to_string(l.in.h) + ", W = " +
         std::to_string(l.in.w) + ", HO = " + std::to_string(l.out.h) +
         ", WO = " + std::to_string(l.out.w) + ";");
  w.line("constexpr int WP = W + 2 * P, HP = H + 2 * P;");
}

void emit_row_ingest(CodeWriter& w) {
  // Shared line-buffer ingest: one padded row per outer iteration.
  w.open("for (int c = 0; c < M; ++c) {");
  w.open("for (int w = 0; w < WP; ++w) {");
  w.pragma("PIPELINE II=1");
  w.line("data_t v = 0;");
  w.line("if (row >= P && row < P + H && w >= P && w < P + W) v = in_s.read();");
  w.line("linebuf[c][row % LINES][w] = v;");
  w.close();
  w.close();
}

/// Emits `data_t <var> = requant(<expr>)` writeback for fixed mode, or a
/// plain cast for float mode. `shift` is the right-shift from the
/// accumulator Q format to the output Q format.
void emit_writeback(CodeWriter& w, const LayerNumeric& nm, int shift,
                    bool relu, const std::string& acc_expr,
                    const std::string& stmt_prefix) {
  if (!nm.fixed) {
    std::string e = acc_expr;
    if (relu) e = "(" + e + ") < 0 ? acc_t(0) : (" + e + ")";
    w.line(stmt_prefix + "(data_t)(" + e + "));");
    return;
  }
  w.line("acc_t shifted = hetacc_requant_shift(" + acc_expr + ", " +
         std::to_string(shift) + ");");
  if (relu) w.line("if (shifted < 0) shifted = 0;");
  w.line(stmt_prefix + "hetacc_saturate(shifted));");
}

// -------------------------------------------------------- layer emitters --
void emit_conv_conventional(CodeWriter& w, const nn::Layer& l,
                            const nn::ConvWeights& cw,
                            const fpga::EngineConfig& cfg,
                            const std::string& fname,
                            const LayerNumeric& nm) {
  const auto& p = l.conv();
  const int w_frac =
      nm.fixed ? fixed::choose_frac_bits(filter_max_abs(cw.filters)) : 0;
  const int acc_frac = nm.in_frac + w_frac;
  w.line("// conventional convolution '" + l.name + "' (template: Conv)");
  w.line("// parallelism: tn=" + std::to_string(cfg.tn) + " tm=" +
         std::to_string(cfg.tm) + " tk=" + std::to_string(cfg.tk) +
         (nm.fixed ? "  Q-format: in=" + std::to_string(nm.in_frac) +
                         " w=" + std::to_string(w_frac) +
                         " out=" + std::to_string(nm.out_frac)
                   : ""));
  w.open("static void " + fname +
         "(hls::stream<data_t>& in_s, hls::stream<data_t>& out_s) {");
  w.pragma("INLINE off");
  emit_conv_constants(w, l);
  w.line("constexpr int LINES = K + S;");
  if (nm.fixed) {
    emit_filter_array_fixed(w, cw.filters, cw.bias, w_frac, acc_frac);
  } else {
    emit_filter_array_float(w, cw.filters, cw.bias);
  }
  w.line("data_t linebuf[M][LINES][WP];");
  w.pragma("ARRAY_PARTITION variable=linebuf dim=2 complete");
  w.pragma("ARRAY_PARTITION variable=weights cyclic factor=" +
           std::to_string(cfg.tm) + " dim=1");
  w.line("int emitted = 0;");
  w.open("for (int row = 0; row < HP; ++row) {");
  emit_row_ingest(w);
  w.open("while (emitted < HO) {");
  w.line("int need = emitted * S + K - 1;");
  w.line("if (need > HP - 1) need = HP - 1;");
  w.line("if (row < need) break;");
  w.open("for (int oc = 0; oc < N; ++oc) {");
  w.pragma("UNROLL factor=" + std::to_string(cfg.tm));
  w.open("for (int ow = 0; ow < WO; ++ow) {");
  w.pragma("PIPELINE II=1");
  w.line("acc_t acc = bias[oc];");
  w.open("for (int m = 0; m < M; ++m) {");
  w.pragma("UNROLL factor=" + std::to_string(cfg.tn));
  w.open("for (int u = 0; u < K; ++u) {");
  w.open("for (int v = 0; v < K; ++v) {");
  w.line("acc += (acc_t)linebuf[m][(emitted * S + u) % LINES][ow * S + v] *");
  w.line("       (acc_t)weights[oc][m][u][v];");
  w.close();
  w.close();
  w.close();
  emit_writeback(w, nm, acc_frac - nm.out_frac, p.fused_relu, "acc",
                 "out_s.write(");
  w.close();
  w.close();
  w.line("++emitted;");
  w.close();
  w.close();
  w.close();
  w.line();
}

void emit_conv_winograd(CodeWriter& w, const nn::Layer& l,
                        const nn::ConvWeights& cw,
                        const fpga::EngineConfig& cfg,
                        const std::string& fname, const LayerNumeric& nm) {
  const auto& p = l.conv();
  const algo::WinogradTransform t = algo::winograd(cfg.wino_m, p.kernel);
  const algo::TransformedFilters tf = algo::transform_filters(t, cw.filters);
  const int n = t.n();

  // Fixed mode: quantize the element-wise multiplier operands, exactly as
  // the DSP array would see them. U gets its own Q format; the transformed
  // data V gets one covering the B^T row-gain amplification.
  double u_max = 1e-6;
  for (const auto& u : tf.u) {
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        u_max = std::max(u_max, std::abs(u.at(a, b)));
      }
    }
  }
  double bt_gain = 0.0;
  for (int a = 0; a < n; ++a) {
    double row = 0.0;
    for (int b = 0; b < n; ++b) row += std::abs(t.bt.at(a, b));
    bt_gain = std::max(bt_gain, row);
  }
  const int u_frac =
      nm.fixed ? fixed::choose_frac_bits(static_cast<float>(u_max)) : 0;
  const double in_max =
      nm.fixed ? 32767.0 / std::ldexp(1.0, nm.in_frac) : 1.0;
  const int v_frac =
      nm.fixed ? fixed::choose_frac_bits(
                     static_cast<float>(bt_gain * bt_gain * in_max))
               : 0;

  w.line("// Winograd F(" + std::to_string(t.m) + "x" + std::to_string(t.m) +
         ", " + std::to_string(t.r) + "x" + std::to_string(t.r) +
         ") convolution '" + l.name + "' (template: WinogradConv)" +
         (nm.fixed ? "  U_FRAC=" + std::to_string(u_frac) +
                         " V_FRAC=" + std::to_string(v_frac)
                   : ""));
  w.open("static void " + fname +
         "(hls::stream<data_t>& in_s, hls::stream<data_t>& out_s) {");
  w.pragma("INLINE off");
  emit_conv_constants(w, l);
  w.line("constexpr int TM = " + std::to_string(t.m) + ", TN = " +
         std::to_string(n) + ";  // output tile, input tile");
  w.line("constexpr int LINES = TN + TM;");
  w.line("constexpr int TILES_W = (WO + TM - 1) / TM;");

  // Pre-transformed filters U = G g G^T, computed offline at generation.
  const std::string u_type = nm.fixed ? "data_t" : "float";
  w.open("static const " + u_type + " U[N][M][TN][TN] = {");
  for (int oc = 0; oc < l.out.c; ++oc) {
    std::ostringstream row;
    row << "{";
    for (int m = 0; m < l.in.c; ++m) {
      const algo::Matrix& u = tf.at(oc, m);
      row << "{";
      for (int a = 0; a < n; ++a) {
        row << "{";
        for (int b = 0; b < n; ++b) {
          if (nm.fixed) {
            row << fixed::Fixed16::quantize(
                static_cast<float>(u.at(a, b)), u_frac);
          } else {
            row << fnum(u.at(a, b));
          }
          if (b + 1 < n) row << ", ";
        }
        row << "}";
        if (a + 1 < n) row << ", ";
      }
      row << "}";
      if (m + 1 < l.in.c) row << ", ";
    }
    row << "},";
    w.line(row.str());
  }
  w.close("};");
  emit_matrix_array(w, "static const float BT[TN][TN]", t.bt);
  emit_matrix_array(w, "static const float AT[TM][TN]", t.at);
  std::ostringstream b;
  b << "static const float bias[N] = {";
  for (int oc = 0; oc < l.out.c; ++oc) {
    b << fnum(cw.bias.empty() ? 0.0f : cw.bias[oc]);
    if (oc + 1 < l.out.c) b << ", ";
  }
  b << "};";
  w.line(b.str());
  if (nm.fixed) {
    w.line("constexpr float IN_SCALE = " +
           fnum(std::ldexp(1.0, -nm.in_frac)) + ";  // Q -> float");
    w.line("constexpr float PROD_SCALE = " +
           fnum(std::ldexp(1.0, -(u_frac + v_frac))) + ";");
    w.line("constexpr float V_SCALE = " + fnum(std::ldexp(1.0, v_frac)) +
           ";");
    w.line("constexpr float OUT_SCALE = " +
           fnum(std::ldexp(1.0, nm.out_frac)) + ";");
  }

  w.line("data_t linebuf[M][LINES][WP];");
  w.pragma("ARRAY_PARTITION variable=linebuf dim=2 complete");
  w.line("int emitted = 0;");
  w.open("for (int row = 0; row < HP; ++row) {");
  emit_row_ingest(w);
  w.open("while (emitted < HO) {");
  w.line("const int blk = emitted / TM;");
  w.line("int need = blk * TM + TN - 1;");
  w.line("if (need > HP - 1) need = HP - 1;");
  w.line("if (row < need) break;");
  w.line("data_t rowbuf[TM][N][WO];");
  w.open("for (int tj = 0; tj < TILES_W; ++tj) {");
  const std::string v_type = nm.fixed ? "data_t" : "float";
  w.line(v_type + " V[M][TN][TN];");
  w.open("for (int c = 0; c < M; ++c) {");
  w.line("float d[TN][TN], tmp[TN][TN];");
  w.open("for (int u = 0; u < TN; ++u) {");
  w.open("for (int v = 0; v < TN; ++v) {");
  w.line("const int rr = blk * TM + u;");
  w.line("const int cc = tj * TM + v;");
  if (nm.fixed) {
    w.line("d[u][v] = (rr < HP && cc < WP)");
    w.line("              ? (float)linebuf[c][rr % LINES][cc] * IN_SCALE");
    w.line("              : 0.0f;");
  } else {
    w.line("d[u][v] = (rr < HP && cc < WP) ? linebuf[c][rr % LINES][cc]"
           " : data_t(0);");
  }
  w.close();
  w.close();
  w.line("// V = B^T d B  (input transform, Eq. 3)");
  w.open("for (int i = 0; i < TN; ++i) {");
  w.open("for (int j = 0; j < TN; ++j) {");
  w.pragma("PIPELINE II=1");
  w.line("float a = 0;");
  w.line("for (int k = 0; k < TN; ++k) a += BT[i][k] * d[k][j];");
  w.line("tmp[i][j] = a;");
  w.close();
  w.close();
  w.open("for (int i = 0; i < TN; ++i) {");
  w.open("for (int j = 0; j < TN; ++j) {");
  w.pragma("PIPELINE II=1");
  w.line("float a = 0;");
  w.line("for (int k = 0; k < TN; ++k) a += tmp[i][k] * BT[j][k];");
  if (nm.fixed) {
    w.line("// multiplier operand quantized to 16 bits (Q V_FRAC)");
    w.line("V[c][i][j] = hetacc_quant_float(a * V_SCALE);");
  } else {
    w.line("V[c][i][j] = a;");
  }
  w.close();
  w.close();
  w.close();
  w.open("for (int oc = 0; oc < N; ++oc) {");
  const std::string macc_type = nm.fixed ? "acc_t" : "float";
  w.line(macc_type + " Macc[TN][TN] = {};");
  w.line("// element-wise multiply-accumulate across channels");
  w.open("for (int c = 0; c < M; ++c) {");
  w.pragma("UNROLL factor=" + std::to_string(cfg.tn));
  w.open("for (int i = 0; i < TN; ++i) {");
  w.open("for (int j = 0; j < TN; ++j) {");
  w.line("Macc[i][j] += (" + macc_type + ")U[oc][c][i][j] * V[c][i][j];");
  w.close();
  w.close();
  w.close();
  w.line("// Y = A^T M A  (output transform)");
  w.line("float t2[TM][TN];");
  w.open("for (int i = 0; i < TM; ++i) {");
  w.open("for (int j = 0; j < TN; ++j) {");
  w.line("float a = 0;");
  if (nm.fixed) {
    w.line("for (int k = 0; k < TN; ++k) a += AT[i][k] * ((float)Macc[k][j] "
           "* PROD_SCALE);");
  } else {
    w.line("for (int k = 0; k < TN; ++k) a += AT[i][k] * Macc[k][j];");
  }
  w.line("t2[i][j] = a;");
  w.close();
  w.close();
  w.open("for (int i = 0; i < TM; ++i) {");
  w.open("for (int j = 0; j < TM; ++j) {");
  w.line("float y = 0;");
  w.line("for (int k = 0; k < TN; ++k) y += t2[i][k] * AT[j][k];");
  w.line("const int orow = blk * TM + i;");
  w.line("const int ocol = tj * TM + j;");
  w.open("if (orow < HO && ocol < WO) {");
  w.line("float val = y + bias[oc];");
  if (p.fused_relu) w.line("if (val < 0) val = 0;");
  if (nm.fixed) {
    w.line("rowbuf[i][oc][ocol] = hetacc_quant_float(val * OUT_SCALE);");
  } else {
    w.line("rowbuf[i][oc][ocol] = (data_t)val;");
  }
  w.close();
  w.close();
  w.close();
  w.close();
  w.close();
  w.open("for (int i = 0; i < TM && emitted < HO; ++i, ++emitted) {");
  w.open("for (int oc = 0; oc < N; ++oc) {");
  w.open("for (int ow = 0; ow < WO; ++ow) {");
  w.pragma("PIPELINE II=1");
  w.line("out_s.write(rowbuf[i][oc][ow]);");
  w.close();
  w.close();
  w.close();
  w.close();
  w.close();
  w.close();
  w.line();
}

void emit_pool(CodeWriter& w, const nn::Layer& l, const std::string& fname,
               const LayerNumeric& nm) {
  const auto& p = l.pool();
  w.line("// pooling '" + l.name + "' (template: Pooling)");
  w.open("static void " + fname +
         "(hls::stream<data_t>& in_s, hls::stream<data_t>& out_s) {");
  w.pragma("INLINE off");
  w.line("constexpr int M = " + std::to_string(l.in.c) + ", K = " +
         std::to_string(p.kernel) + ", S = " + std::to_string(p.stride) +
         ", P = " + std::to_string(p.pad) + ";");
  w.line("constexpr int H = " + std::to_string(l.in.h) + ", W = " +
         std::to_string(l.in.w) + ", HO = " + std::to_string(l.out.h) +
         ", WO = " + std::to_string(l.out.w) + ";");
  w.line("constexpr int WP = W + 2 * P, HP = H + 2 * P, LINES = K + S;");
  w.line("data_t linebuf[M][LINES][WP];");
  w.pragma("ARRAY_PARTITION variable=linebuf dim=2 complete");
  w.line("int emitted = 0;");
  w.open("for (int row = 0; row < HP; ++row) {");
  emit_row_ingest(w);
  w.open("while (emitted < HO) {");
  w.line("int need = emitted * S + K - 1;");
  w.line("if (need > HP - 1) need = HP - 1;");
  w.line("if (row < need) break;");
  w.open("for (int c = 0; c < M; ++c) {");
  w.open("for (int ow = 0; ow < WO; ++ow) {");
  w.pragma("PIPELINE II=1");
  if (nm.fixed) {
    w.line("data_t best = -32768;");
  } else {
    w.line("data_t best = -3.3e38f;");
  }
  w.line("acc_t sum = 0;");
  w.line("int cnt = 0;");
  w.open("for (int u = 0; u < K; ++u) {");
  w.line("const int hp = emitted * S + u;");
  w.line("if (hp - P < 0 || hp - P >= H) continue;");
  w.open("for (int v = 0; v < K; ++v) {");
  w.line("const int wp = ow * S + v;");
  w.line("if (wp - P < 0 || wp - P >= W) continue;");
  w.line("const data_t x = linebuf[c][hp % LINES][wp];");
  w.line("if (x > best) best = x;");
  w.line("sum += x;");
  w.line("++cnt;");
  w.close();
  w.close();
  const int shift = nm.in_frac - nm.out_frac;  // pooling preserves scale
  if (p.method == nn::PoolMethod::kMax) {
    if (nm.fixed && shift != 0) {
      w.line("out_s.write(hetacc_saturate(hetacc_requant_shift((acc_t)best, "
             + std::to_string(shift) + ")));");
    } else {
      w.line("out_s.write(best);");
    }
  } else {
    if (nm.fixed) {
      w.line("acc_t avg = cnt ? (sum + (sum >= 0 ? cnt / 2 : -(cnt / 2))) / "
             "cnt : 0;");
      w.line("out_s.write(hetacc_saturate(hetacc_requant_shift(avg, " +
             std::to_string(shift) + ")));");
    } else {
      w.line("out_s.write(cnt ? (data_t)(sum / cnt) : data_t(0));");
    }
  }
  w.close();
  w.close();
  w.line("++emitted;");
  w.close();
  w.close();
  w.close();
  w.line();
}

void emit_lrn(CodeWriter& w, const nn::Layer& l, const std::string& fname,
              const LayerNumeric& nm) {
  const auto& p = l.lrn();
  w.line("// local response normalization '" + l.name +
         "' (template: LRN; fixed mode converts through float, modeling the "
         "LUT-backed hardware unit)");
  w.open("static void " + fname +
         "(hls::stream<data_t>& in_s, hls::stream<data_t>& out_s) {");
  w.pragma("INLINE off");
  w.line("constexpr int M = " + std::to_string(l.in.c) + ", W = " +
         std::to_string(l.in.w) + ", H = " + std::to_string(l.in.h) +
         ", LS = " + std::to_string(p.local_size) + ";");
  w.line("const float ALPHA = " + fnum(p.alpha) + ", BETA = " + fnum(p.beta) +
         ", KK = " + fnum(p.k) + ";");
  if (nm.fixed) {
    w.line("constexpr float IN_SCALE = " +
           fnum(std::ldexp(1.0, -nm.in_frac)) + ";");
    w.line("constexpr float OUT_SCALE = " +
           fnum(std::ldexp(1.0, nm.out_frac)) + ";");
  }
  w.line("float rowbuf[M][W];");
  w.open("for (int row = 0; row < H; ++row) {");
  w.open("for (int c = 0; c < M; ++c) {");
  w.open("for (int w = 0; w < W; ++w) {");
  w.pragma("PIPELINE II=1");
  if (nm.fixed) {
    w.line("rowbuf[c][w] = (float)in_s.read() * IN_SCALE;");
  } else {
    w.line("rowbuf[c][w] = in_s.read();");
  }
  w.close();
  w.close();
  w.open("for (int c = 0; c < M; ++c) {");
  w.open("for (int w = 0; w < W; ++w) {");
  w.pragma("PIPELINE II=1");
  w.line("float ss = 0;");
  w.line("const int lo = c - LS / 2 < 0 ? 0 : c - LS / 2;");
  w.line("const int hi = c + LS / 2 >= M ? M - 1 : c + LS / 2;");
  w.line("for (int cc = lo; cc <= hi; ++cc) ss += rowbuf[cc][w] * rowbuf[cc][w];");
  w.line("const float denom = std::pow(KK + ALPHA / (float)LS * ss, BETA);");
  if (nm.fixed) {
    w.line("out_s.write(hetacc_quant_float(rowbuf[c][w] / denom * "
           "OUT_SCALE));");
  } else {
    w.line("out_s.write((data_t)(rowbuf[c][w] / denom));");
  }
  w.close();
  w.close();
  w.close();
  w.close();
  w.line();
}

void emit_relu(CodeWriter& w, const nn::Layer& l, const std::string& fname,
               const LayerNumeric& nm) {
  w.line("// ReLU '" + l.name + "'");
  w.open("static void " + fname +
         "(hls::stream<data_t>& in_s, hls::stream<data_t>& out_s) {");
  w.pragma("INLINE off");
  w.line("constexpr long long TOTAL = " + std::to_string(l.out.elems()) + ";");
  w.open("for (long long i = 0; i < TOTAL; ++i) {");
  w.pragma("PIPELINE II=1");
  w.line("const data_t x = in_s.read();");
  const int shift = nm.in_frac - nm.out_frac;
  if (nm.fixed && shift != 0) {
    w.line("const acc_t y = x < 0 ? 0 : (acc_t)x;");
    w.line("out_s.write(hetacc_saturate(hetacc_requant_shift(y, " +
           std::to_string(shift) + ")));");
  } else {
    w.line("out_s.write(x < 0 ? data_t(0) : x);");
  }
  w.close();
  w.close();
  w.line();
}

}  // namespace

core::Strategy trivial_strategy(const nn::Network& net,
                                const fpga::EngineModel& model) {
  if (net.empty() || net[0].kind != nn::LayerKind::kInput) {
    throw std::invalid_argument("trivial_strategy: net must start with input");
  }
  core::FusionGroup g;
  g.first = 1;
  g.last = net.size() - 1;
  for (std::size_t i = 1; i < net.size(); ++i) {
    fpga::EngineConfig cfg;
    cfg.algo = (net[i].kind == nn::LayerKind::kConv)
                   ? fpga::ConvAlgo::kConventional
                   : fpga::ConvAlgo::kNone;
    g.impls.push_back(model.implement(net[i], cfg));
  }
  g.timing = core::evaluate_group_timing(net, g.first, g.last, g.impls,
                                         model.device());
  core::Strategy s;
  s.groups.push_back(std::move(g));
  return s;
}

GeneratedDesign generate_design(const nn::Network& net,
                                const core::Strategy& strategy,
                                const nn::WeightStore& ws,
                                const CodegenOptions& opt) {
  if (!opt.embed_weights) {
    throw std::invalid_argument(
        "generate_design: only embedded weights are supported");
  }
  if (!net.is_chain()) {
    throw std::invalid_argument(
        "generate_design: the HLS template emits chained DATAFLOW stages "
        "only; branchy (SP-DAG) nets are not supported yet");
  }
  const bool fixed = opt.fixed_point;
  if (fixed && opt.layer_fracs.size() != net.size() - 1) {
    throw std::invalid_argument(
        "generate_design: fixed mode needs layer_fracs for every layer");
  }
  // Fused (and chained) layers share streams: Q formats must line up.
  if (fixed) {
    for (std::size_t i = 1; i < opt.layer_fracs.size(); ++i) {
      if (opt.layer_fracs[i].first != opt.layer_fracs[i - 1].second) {
        throw std::invalid_argument(
            "generate_design: layer " + std::to_string(i + 1) +
            " in_frac must equal previous layer's out_frac");
      }
    }
  }
  auto numeric_of = [&](std::size_t layer_index) {
    LayerNumeric nm;
    nm.fixed = fixed;
    if (fixed) {
      nm.in_frac = opt.layer_fracs[layer_index - 1].first;
      nm.out_frac = opt.layer_fracs[layer_index - 1].second;
    }
    return nm;
  };

  GeneratedDesign d;

  CodeWriter hdr;
  hdr.line("// Generated by hetacc codegen (paper Fig. 3/4). Do not edit.");
  hdr.line("#pragma once");
  hdr.line("#include \"hls_compat.h\"");
  hdr.line("#include <cstdint>");
  hdr.line();
  if (fixed) {
    hdr.line("typedef std::int16_t data_t;  // 16-bit fixed (paper §7.1)");
    hdr.line("typedef long long acc_t;");
    hdr.line("constexpr int kInputFrac = " +
             std::to_string(opt.layer_fracs.front().first) + ";");
    hdr.line("constexpr int kOutputFrac = " +
             std::to_string(opt.layer_fracs.back().second) + ";");
    hdr.line();
    hdr.open("static inline acc_t hetacc_requant_shift(acc_t v, int shift) {");
    hdr.line("if (shift <= 0) return v << -shift;");
    hdr.line("const acc_t half = acc_t(1) << (shift - 1);");
    hdr.line("return (v + (v >= 0 ? half : half - 1)) >> shift;");
    hdr.close();
    hdr.open("static inline data_t hetacc_saturate(acc_t v) {");
    hdr.line("if (v > 32767) return 32767;");
    hdr.line("if (v < -32768) return -32768;");
    hdr.line("return (data_t)v;");
    hdr.close();
    hdr.open("static inline data_t hetacc_quant_float(float v) {");
    hdr.line("const float r = v >= 0 ? v + 0.5f : v - 0.5f;");
    hdr.line("if (r > 32767.0f) return 32767;");
    hdr.line("if (r < -32768.0f) return -32768;");
    hdr.line("return (data_t)r;");
    hdr.close();
  } else {
    hdr.line("typedef " + opt.data_type + " data_t;");
    hdr.line("typedef float acc_t;");
  }
  hdr.line();

  CodeWriter src;
  src.line("// Generated by hetacc codegen. Network: " + net.name());
  src.line("#include \"design.h\"");
  src.line("#include <cmath>");
  src.line();

  for (std::size_t gi = 0; gi < strategy.groups.size(); ++gi) {
    const core::FusionGroup& g = strategy.groups[gi];
    std::vector<std::string> fnames;
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const nn::Layer& l = net[g.first + k];
      const fpga::EngineConfig& cfg = g.impls[k].cfg;
      const std::string fname = "layer_" + sanitize(l.name);
      const LayerNumeric nm = numeric_of(g.first + k);
      fnames.push_back(fname);
      switch (l.kind) {
        case nn::LayerKind::kConv:
          if (cfg.algo == fpga::ConvAlgo::kWinogradStride2) {
            throw std::invalid_argument(
                "generate_design: no template for the stride-2 Winograd "
                "decomposition yet (layer '" + l.name + "')");
          }
          if (cfg.algo == fpga::ConvAlgo::kWinograd) {
            emit_conv_winograd(src, l, ws.conv(g.first + k), cfg, fname, nm);
          } else {
            emit_conv_conventional(src, l, ws.conv(g.first + k), cfg, fname,
                                   nm);
          }
          break;
        case nn::LayerKind::kPool:
          emit_pool(src, l, fname, nm);
          break;
        case nn::LayerKind::kLrn:
          emit_lrn(src, l, fname, nm);
          break;
        case nn::LayerKind::kRelu:
          emit_relu(src, l, fname, nm);
          break;
        default:
          throw std::invalid_argument(
              "generate_design: unsupported layer kind in group (layer '" +
              l.name + "')");
      }
    }

    const std::string top = "group" + std::to_string(gi) + "_top";
    d.group_tops.push_back(top);
    hdr.line("void " + top +
             "(hls::stream<data_t>& in_s, hls::stream<data_t>& out_s);");

    src.line("// fusion group " + std::to_string(gi) + ": layers [" +
             std::to_string(g.first) + ", " + std::to_string(g.last) + "]");
    src.open("void " + top +
             "(hls::stream<data_t>& in_s, hls::stream<data_t>& out_s) {");
    src.pragma("DATAFLOW");
    for (std::size_t k = 0; k + 1 < fnames.size(); ++k) {
      const std::string ch = "ch" + std::to_string(gi) + "_" +
                             std::to_string(k);
      src.line("hls::stream<data_t> " + ch + "(\"" + ch + "\");");
      src.pragma("STREAM variable=" + ch + " depth=" +
                 std::to_string(opt.fifo_depth));
    }
    for (std::size_t k = 0; k < fnames.size(); ++k) {
      const std::string in =
          (k == 0) ? "in_s"
                   : "ch" + std::to_string(gi) + "_" + std::to_string(k - 1);
      const std::string out =
          (k + 1 == fnames.size())
              ? "out_s"
              : "ch" + std::to_string(gi) + "_" + std::to_string(k);
      src.line(fnames[k] + "(" + in + ", " + out + ");");
    }
    src.close();
    src.line();
  }

  // Testbench: file in -> groups chained (DDR round trip between groups) ->
  // file out. Text values are floats in both modes; the fixed testbench
  // quantizes on ingest and rescales on egress.
  CodeWriter tb;
  tb.line("// C-simulation testbench (generated).");
  tb.line("#include \"design.h\"");
  tb.line("#include <fstream>");
  tb.line("#include <iomanip>");
  tb.line("#include <iostream>");
  tb.line("#include <vector>");
  tb.line();
  tb.open("int main(int argc, char** argv) {");
  tb.line("const char* in_path = argc > 1 ? argv[1] : \"input.txt\";");
  tb.line("const char* out_path = argc > 2 ? argv[2] : \"output.txt\";");
  tb.line("std::ifstream fin(in_path);");
  tb.open("if (!fin) {");
  tb.line("std::cerr << \"cannot open \" << in_path << \"\\n\";");
  tb.line("return 1;");
  tb.close();
  tb.line("std::vector<double> data;");
  tb.line("double v;");
  tb.line("while (fin >> v) data.push_back(v);");
  tb.line("hls::stream<data_t> s0;");
  if (fixed) {
    tb.open("for (std::size_t i = 0; i < data.size(); ++i) {");
    tb.line("s0.write(hetacc_quant_float((float)(data[i] * (1 << "
            "kInputFrac))));");
    tb.close();
  } else {
    tb.line("for (std::size_t i = 0; i < data.size(); ++i) "
            "s0.write((data_t)data[i]);");
  }
  std::string cur = "s0";
  for (std::size_t gi = 0; gi < d.group_tops.size(); ++gi) {
    const std::string next = "s" + std::to_string(gi + 1);
    tb.line("hls::stream<data_t> " + next + ";");
    tb.line(d.group_tops[gi] + "(" + cur + ", " + next + ");");
    cur = next;
  }
  tb.line("std::ofstream fout(out_path);");
  tb.line("fout << std::setprecision(9);");
  if (fixed) {
    tb.open("while (!" + cur + ".empty()) {");
    tb.line("fout << ((double)" + cur +
            ".read() / (double)(1 << kOutputFrac)) << \"\\n\";");
    tb.close();
  } else {
    tb.line("while (!" + cur + ".empty()) fout << " + cur +
            ".read() << \"\\n\";");
  }
  tb.line("return 0;");
  tb.close();

  d.header = hdr.str();
  d.source = src.str();
  d.testbench = tb.str();
  return d;
}

namespace {
// The compat header is shipped inside the binary so write_design() can drop
// a self-contained project into any directory.
constexpr const char* kCompatHeader =
#include "codegen/hls_compat_string.inc"
    ;
}  // namespace

void write_design(const GeneratedDesign& d, const std::string& dir) {
  std::filesystem::create_directories(dir);
  auto dump = [&](const std::string& name, const std::string& text) {
    std::ofstream f(dir + "/" + name);
    if (!f) throw std::runtime_error("cannot write " + dir + "/" + name);
    f << text;
  };
  dump("design.h", d.header);
  dump("design.cpp", d.source);
  dump("main.cpp", d.testbench);
  dump("hls_compat.h", kCompatHeader);
}

std::string tensor_to_stream_text(const nn::Tensor& t) {
  std::ostringstream os;
  os << std::setprecision(9);
  const nn::Shape s = t.shape();
  for (int h = 0; h < s.h; ++h) {
    for (int c = 0; c < s.c; ++c) {
      for (int w = 0; w < s.w; ++w) os << t.at(c, h, w) << "\n";
    }
  }
  return os.str();
}

nn::Tensor tensor_from_stream_text(const std::string& text,
                                   const nn::Shape& shape) {
  std::istringstream is(text);
  nn::Tensor t(shape);
  double v;
  for (int h = 0; h < shape.h; ++h) {
    for (int c = 0; c < shape.c; ++c) {
      for (int w = 0; w < shape.w; ++w) {
        if (!(is >> v)) {
          throw std::runtime_error("tensor_from_stream_text: short read");
        }
        t.at(c, h, w) = static_cast<float>(v);
      }
    }
  }
  if (is >> v) {
    throw std::runtime_error("tensor_from_stream_text: trailing data");
  }
  return t;
}

}  // namespace hetacc::codegen
