#pragma once
// Host-side stand-in for the Vivado HLS headers the generated code includes.
// In HLS C simulation, DATAFLOW functions execute sequentially and
// hls::stream is an unbounded FIFO — which is exactly what this header
// provides, so generated designs can be compiled with any C++17 compiler
// and validated against the reference executor.

#include <cstddef>
#include <deque>
#include <stdexcept>

namespace hls {

template <typename T>
class stream {
 public:
  stream() = default;
  explicit stream(const char* /*name*/) {}

  void write(const T& v) { q_.push_back(v); }

  T read() {
    if (q_.empty()) {
      throw std::runtime_error("hls::stream read on empty stream");
    }
    T v = q_.front();
    q_.pop_front();
    return v;
  }

  bool read_nb(T& v) {
    if (q_.empty()) return false;
    v = read();
    return true;
  }

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }

 private:
  std::deque<T> q_;
};

}  // namespace hls
