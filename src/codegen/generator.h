#pragma once
// HLS code generator (paper §6, Fig. 4): emits Vivado-HLS-style C++ for a
// strategy — one function per layer instantiated from the conventional /
// Winograd / pooling / LRN templates, a DATAFLOW top function per fusion
// group wiring FIFO channels, and a C-simulation testbench. The generated
// code compiles against codegen/hls_compat.h on any host compiler, which is
// how tests validate it against the reference executor.
//
// Stream element order is (row, channel, column): one raster row at a time,
// channel-major within the row — the order the line-buffer architecture
// consumes and produces naturally (§4.2).

#include <string>

#include "core/strategy.h"
#include "nn/network.h"
#include "nn/weights.h"

namespace hetacc::codegen {

struct CodegenOptions {
  std::string data_type = "float";  ///< csim datapath type (float mode)
  int fifo_depth = 512;             ///< STREAM depth pragma on channels
  bool embed_weights = true;        ///< bake weights as initializers

  /// Fixed-point mode: data_t becomes int16_t, weights are baked as raw
  /// Q-format integers, MACs accumulate in 64-bit and shift back with
  /// round-to-nearest + saturation — the paper's 16-bit datapath (§7.1).
  bool fixed_point = false;
  /// Per-layer (in_frac, out_frac), index-aligned with net layers
  /// 1..N-1. Required in fixed mode; consecutive fused layers must agree
  /// (producer out_frac == consumer in_frac) since they share a stream.
  std::vector<std::pair<int, int>> layer_fracs;
};

struct GeneratedDesign {
  std::string header;     ///< design.h — top-function declarations
  std::string source;     ///< design.cpp — layer functions + DATAFLOW tops
  std::string testbench;  ///< main.cpp — file-driven C simulation harness
  std::vector<std::string> group_tops;  ///< one top function per group
};

/// Generates the full design for a strategy over `net` (which must begin
/// with an input layer). Weight values come from `ws`.
[[nodiscard]] GeneratedDesign generate_design(const nn::Network& net,
                                              const core::Strategy& strategy,
                                              const nn::WeightStore& ws,
                                              const CodegenOptions& opt = {});

/// Convenience: a single fusion group spanning all layers, conventional
/// algorithm everywhere (no optimizer needed).
[[nodiscard]] core::Strategy trivial_strategy(const nn::Network& net,
                                              const fpga::EngineModel& model);

/// Writes design.h / design.cpp / main.cpp and a copy of hls_compat.h into
/// `dir` (created if needed).
void write_design(const GeneratedDesign& d, const std::string& dir);

/// Serializes a tensor in the generated design's stream order (row, c, col),
/// one value per line — the testbench's input format.
[[nodiscard]] std::string tensor_to_stream_text(const nn::Tensor& t);

/// Parses testbench output text back into a tensor of the given shape.
[[nodiscard]] nn::Tensor tensor_from_stream_text(const std::string& text,
                                                 const nn::Shape& shape);

}  // namespace hetacc::codegen
