#pragma once
// Vivado-HLS-style synthesis report: the tool-flow's last modeled artifact.
// `write_report` emits a csynth-like XML summary per generated design
// (resource estimates + latency, from the same model the optimizer used);
// `parse_report` reads such a file back — also usable on hand-edited
// reports, so measured numbers from a real HLS run can be compared against
// the model (the calibration loop a deployment of this framework would run).

#include <string>
#include <vector>

#include "core/strategy.h"

namespace hetacc::codegen {

struct ModuleReport {
  std::string name;
  fpga::ResourceVector resources;
  long long latency_cycles = 0;
};

struct HlsReport {
  std::string design;
  std::string part;
  double clock_ns = 10.0;
  std::vector<ModuleReport> modules;

  [[nodiscard]] fpga::ResourceVector total_resources() const;
};

/// Builds the report for a strategy: one module per layer function plus one
/// per group top.
[[nodiscard]] HlsReport make_report(const nn::Network& net,
                                    const core::Strategy& strategy,
                                    const fpga::Device& dev);

/// csynth.xml-style serialization.
[[nodiscard]] std::string to_xml(const HlsReport& r);

/// Parses the XML produced by to_xml (and tolerant of reordered fields).
/// Throws std::runtime_error on malformed input.
[[nodiscard]] HlsReport parse_report_xml(const std::string& xml);

/// Relative deviation per resource class between a modeled and a measured
/// report (measured - modeled) / modeled, for the calibration loop.
struct ReportDelta {
  double bram = 0.0, dsp = 0.0, ff = 0.0, lut = 0.0, latency = 0.0;
};
[[nodiscard]] ReportDelta compare_reports(const HlsReport& modeled,
                                          const HlsReport& measured);

}  // namespace hetacc::codegen
