#pragma once
// Fixed-point calibration: picks per-layer Q formats for the 16-bit
// datapath (paper §7.1 "16-bit fixed data type") from observed activation
// ranges, the way deployment flows calibrate before synthesis. Runs the
// float reference executor over sample inputs, records per-layer dynamic
// ranges, and chooses the widest fraction that avoids saturation.

#include "arch/engines.h"
#include "nn/network.h"
#include "nn/reference.h"
#include "nn/weights.h"

namespace hetacc::quant {

struct LayerRange {
  std::string name;
  float max_abs_in = 0.0f;
  float max_abs_out = 0.0f;
  float min_in = 0.0f;   ///< signed range, for the asymmetric int8 grid
  float max_in = 0.0f;
  float min_out = 0.0f;
  float max_out = 0.0f;
  int in_frac = 15;
  int out_frac = 15;
};

struct Calibration {
  std::vector<LayerRange> layers;  ///< index-aligned with net layers 1..N-1

  /// Per-layer numeric modes for arch::FusionPipeline.
  [[nodiscard]] std::vector<arch::NumericMode> modes() const;

  /// Per-layer int8 modes: asymmetric activation grids (scale, zero-point)
  /// derived from the observed signed ranges. Per-channel weight scales are
  /// derived later from the filters themselves (arch engines / algo
  /// conv_quant_i8), so the mode only carries the activation grids.
  [[nodiscard]] std::vector<arch::NumericMode> modes_int8() const;
};

/// Observes ranges over the given sample inputs (at least one required) and
/// adds `guard_bits` of headroom on every format (inputs outside the sample
/// distribution then still avoid saturation).
[[nodiscard]] Calibration calibrate(const nn::Network& net,
                                    const nn::WeightStore& ws,
                                    const std::vector<nn::Tensor>& samples,
                                    int guard_bits = 1);

/// A copy of `ws` with every weight rounded to a Q format chosen per layer
/// from the weight ranges — what the DDR images actually contain.
[[nodiscard]] nn::WeightStore quantize_weights(const nn::Network& net,
                                               const nn::WeightStore& ws);

}  // namespace hetacc::quant
