#include "quant/calibration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "algo/int8_quant.h"
#include "fixed/fixed16.h"

namespace hetacc::quant {

namespace {
float max_abs(const nn::Tensor& t) {
  float m = 0.0f;
  for (float v : t.vec()) m = std::max(m, std::abs(v));
  return m;
}

struct MinMax {
  float mn = 0.0f;
  float mx = 0.0f;
};

MinMax min_max(const nn::Tensor& t) {
  MinMax r;
  bool first = true;
  for (float v : t.vec()) {
    if (first) {
      r.mn = r.mx = v;
      first = false;
    } else {
      r.mn = std::min(r.mn, v);
      r.mx = std::max(r.mx, v);
    }
  }
  return r;
}
}  // namespace

std::vector<arch::NumericMode> Calibration::modes() const {
  std::vector<arch::NumericMode> out;
  out.reserve(layers.size());
  for (const auto& l : layers) {
    out.push_back(arch::NumericMode{l.in_frac, l.out_frac});
  }
  return out;
}

std::vector<arch::NumericMode> Calibration::modes_int8() const {
  std::vector<arch::NumericMode> out;
  out.reserve(layers.size());
  for (const auto& l : layers) {
    arch::NumericMode m;
    m.i8 = true;
    const algo::ActQuant in = algo::choose_act_quant(l.min_in, l.max_in);
    const algo::ActQuant o = algo::choose_act_quant(l.min_out, l.max_out);
    m.in_scale = in.scale;
    m.in_zp = in.zp;
    m.out_scale = o.scale;
    m.out_zp = o.zp;
    out.push_back(m);
  }
  return out;
}

Calibration calibrate(const nn::Network& net, const nn::WeightStore& ws,
                      const std::vector<nn::Tensor>& samples,
                      int guard_bits) {
  if (samples.empty()) {
    throw std::invalid_argument("calibrate: need at least one sample");
  }
  if (net.empty() || net[0].kind != nn::LayerKind::kInput) {
    throw std::invalid_argument("calibrate: net must start with input");
  }
  Calibration cal;
  cal.layers.resize(net.size() - 1);
  for (std::size_t i = 1; i < net.size(); ++i) {
    cal.layers[i - 1].name = net[i].name;
  }
  for (const nn::Tensor& sample : samples) {
    if (sample.shape() != net[0].out) {
      throw std::invalid_argument("calibrate: sample shape mismatch");
    }
    const auto outs = nn::run_network_all(net, ws, sample);
    float prev = max_abs(sample);
    MinMax prev_mm = min_max(sample);
    for (std::size_t i = 1; i < net.size(); ++i) {
      auto& lr = cal.layers[i - 1];
      lr.max_abs_in = std::max(lr.max_abs_in, prev);
      lr.min_in = std::min(lr.min_in, prev_mm.mn);
      lr.max_in = std::max(lr.max_in, prev_mm.mx);
      const float out_abs = max_abs(outs[i]);
      const MinMax out_mm = min_max(outs[i]);
      lr.max_abs_out = std::max(lr.max_abs_out, out_abs);
      lr.min_out = std::min(lr.min_out, out_mm.mn);
      lr.max_out = std::max(lr.max_out, out_mm.mx);
      prev = out_abs;
      prev_mm = out_mm;
    }
  }
  for (auto& lr : cal.layers) {
    lr.in_frac = std::clamp(
        fixed::choose_frac_bits(lr.max_abs_in) - guard_bits, 0, 15);
    lr.out_frac = std::clamp(
        fixed::choose_frac_bits(lr.max_abs_out) - guard_bits, 0, 15);
  }
  return cal;
}

nn::WeightStore quantize_weights(const nn::Network& net,
                                 const nn::WeightStore& ws) {
  nn::WeightStore out = ws;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net[i].kind != nn::LayerKind::kConv) continue;
    auto& w = out.conv(i);
    float m = 0.0f;
    for (std::int64_t j = 0; j < w.filters.size(); ++j) {
      m = std::max(m, std::abs(w.filters.data()[j]));
    }
    for (float b : w.bias) m = std::max(m, std::abs(b));
    const int frac = fixed::choose_frac_bits(m);
    for (std::int64_t j = 0; j < w.filters.size(); ++j) {
      w.filters.data()[j] =
          fixed::quantize_to_float(w.filters.data()[j], frac);
    }
    for (auto& b : w.bias) b = fixed::quantize_to_float(b, frac);
  }
  return out;
}

}  // namespace hetacc::quant
