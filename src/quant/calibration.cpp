#include "quant/calibration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fixed/fixed16.h"

namespace hetacc::quant {

namespace {
float max_abs(const nn::Tensor& t) {
  float m = 0.0f;
  for (float v : t.vec()) m = std::max(m, std::abs(v));
  return m;
}
}  // namespace

std::vector<arch::NumericMode> Calibration::modes() const {
  std::vector<arch::NumericMode> out;
  out.reserve(layers.size());
  for (const auto& l : layers) {
    out.push_back(arch::NumericMode{l.in_frac, l.out_frac});
  }
  return out;
}

Calibration calibrate(const nn::Network& net, const nn::WeightStore& ws,
                      const std::vector<nn::Tensor>& samples,
                      int guard_bits) {
  if (samples.empty()) {
    throw std::invalid_argument("calibrate: need at least one sample");
  }
  if (net.empty() || net[0].kind != nn::LayerKind::kInput) {
    throw std::invalid_argument("calibrate: net must start with input");
  }
  Calibration cal;
  cal.layers.resize(net.size() - 1);
  for (std::size_t i = 1; i < net.size(); ++i) {
    cal.layers[i - 1].name = net[i].name;
  }
  for (const nn::Tensor& sample : samples) {
    if (sample.shape() != net[0].out) {
      throw std::invalid_argument("calibrate: sample shape mismatch");
    }
    const auto outs = nn::run_network_all(net, ws, sample);
    float prev = max_abs(sample);
    for (std::size_t i = 1; i < net.size(); ++i) {
      auto& lr = cal.layers[i - 1];
      lr.max_abs_in = std::max(lr.max_abs_in, prev);
      const float out_abs = max_abs(outs[i]);
      lr.max_abs_out = std::max(lr.max_abs_out, out_abs);
      prev = out_abs;
    }
  }
  for (auto& lr : cal.layers) {
    lr.in_frac = std::clamp(
        fixed::choose_frac_bits(lr.max_abs_in) - guard_bits, 0, 15);
    lr.out_frac = std::clamp(
        fixed::choose_frac_bits(lr.max_abs_out) - guard_bits, 0, 15);
  }
  return cal;
}

nn::WeightStore quantize_weights(const nn::Network& net,
                                 const nn::WeightStore& ws) {
  nn::WeightStore out = ws;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net[i].kind != nn::LayerKind::kConv) continue;
    auto& w = out.conv(i);
    float m = 0.0f;
    for (std::int64_t j = 0; j < w.filters.size(); ++j) {
      m = std::max(m, std::abs(w.filters.data()[j]));
    }
    for (float b : w.bias) m = std::max(m, std::abs(b));
    const int frac = fixed::choose_frac_bits(m);
    for (std::int64_t j = 0; j < w.filters.size(); ++j) {
      w.filters.data()[j] =
          fixed::quantize_to_float(w.filters.data()[j], frac);
    }
    for (auto& b : w.bias) b = fixed::quantize_to_float(b, frac);
  }
  return out;
}

}  // namespace hetacc::quant
