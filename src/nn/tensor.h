#pragma once
// Dense tensor in CHW layout used throughout the reference executor and the
// architecture simulator. Single-image (batch-1) inference, matching the
// paper's latency experiments.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hetacc::nn {

/// Shape of a CHW tensor. `c` is channels, `h` rows, `w` columns.
struct Shape {
  int c = 0;
  int h = 0;
  int w = 0;

  [[nodiscard]] std::int64_t elems() const {
    return static_cast<std::int64_t>(c) * h * w;
  }
  /// Bytes occupied at the given element width (paper uses 16-bit fixed).
  [[nodiscard]] std::int64_t bytes(int bytes_per_elem = 2) const {
    return elems() * bytes_per_elem;
  }
  bool operator==(const Shape&) const = default;
  [[nodiscard]] std::string str() const;
};

/// Row-major CHW float tensor.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape s, float fill = 0.0f)
      : shape_(s), data_(static_cast<std::size_t>(s.elems()), fill) {
    if (s.c < 0 || s.h < 0 || s.w < 0) {
      throw std::invalid_argument("Tensor: negative shape " + s.str());
    }
  }
  Tensor(int c, int h, int w, float fill = 0.0f) : Tensor(Shape{c, h, w}, fill) {}

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t size() const { return shape_.elems(); }

  float& at(int c, int h, int w) { return data_[index(c, h, w)]; }
  [[nodiscard]] float at(int c, int h, int w) const {
    return data_[index(c, h, w)];
  }
  /// Reads with zero padding outside the spatial extent (channels must be
  /// in range). Convolution reference paths use this for padded borders.
  [[nodiscard]] float at_padded(int c, int h, int w) const {
    if (h < 0 || h >= shape_.h || w < 0 || w >= shape_.w) return 0.0f;
    return at(c, h, w);
  }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::vector<float>& vec() { return data_; }
  [[nodiscard]] const std::vector<float>& vec() const { return data_; }

  /// Raw row/channel pointers for hot loops: no per-element bounds check
  /// (the caller owns range correctness, checked once here).
  [[nodiscard]] float* row_ptr(int c, int h) {
    check(c, h, 0);
    return data_.data() + (static_cast<std::size_t>(c) * shape_.h + h) * shape_.w;
  }
  [[nodiscard]] const float* row_ptr(int c, int h) const {
    check(c, h, 0);
    return data_.data() + (static_cast<std::size_t>(c) * shape_.h + h) * shape_.w;
  }
  [[nodiscard]] float* channel_ptr(int c) { return row_ptr(c, 0); }
  [[nodiscard]] const float* channel_ptr(int c) const { return row_ptr(c, 0); }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Max absolute difference against another tensor of identical shape.
  [[nodiscard]] float max_abs_diff(const Tensor& other) const;

  bool operator==(const Tensor&) const = default;

 private:
  [[nodiscard]] std::size_t index(int c, int h, int w) const {
    check(c, h, w);
    return (static_cast<std::size_t>(c) * shape_.h + h) * shape_.w + w;
  }
  void check(int c, int h, int w) const {
    if (c < 0 || c >= shape_.c || h < 0 || h >= shape_.h || w < 0 ||
        w >= shape_.w) {
      throw std::out_of_range("Tensor index (" + std::to_string(c) + "," +
                              std::to_string(h) + "," + std::to_string(w) +
                              ") out of " + shape_.str());
    }
  }

  Shape shape_{};
  std::vector<float> data_;
};

/// Filter bank for a convolutional layer: N output channels, each an
/// M x K x K kernel, stored as [n][m][u][v] row-major.
class FilterBank {
 public:
  FilterBank() = default;
  FilterBank(int n, int m, int k, float fill = 0.0f)
      : n_(n), m_(m), k_(k),
        data_(static_cast<std::size_t>(n) * m * k * k, fill) {
    if (n < 0 || m < 0 || k < 0) {
      throw std::invalid_argument("FilterBank: negative dimension");
    }
  }

  [[nodiscard]] int out_channels() const { return n_; }
  [[nodiscard]] int in_channels() const { return m_; }
  [[nodiscard]] int kernel() const { return k_; }
  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(n_) * m_ * k_ * k_;
  }

  float& at(int n, int m, int u, int v) {
    return data_[index(n, m, u, v)];
  }
  [[nodiscard]] float at(int n, int m, int u, int v) const {
    return data_[index(n, m, u, v)];
  }
  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  /// Raw pointer to output-channel n's m*k*k weights (row-major (m,u,v) —
  /// exactly one im2col/GEMM weight row). Bounds checked once.
  [[nodiscard]] const float* filter_ptr(int n) const {
    return data_.data() + index(n, 0, 0, 0);
  }
  /// Raw pointer to the k*k kernel for channel pair (n, m).
  [[nodiscard]] const float* kernel_ptr(int n, int m) const {
    return data_.data() + index(n, m, 0, 0);
  }

 private:
  [[nodiscard]] std::size_t index(int n, int m, int u, int v) const {
    if (n < 0 || n >= n_ || m < 0 || m >= m_ || u < 0 || u >= k_ || v < 0 ||
        v >= k_) {
      throw std::out_of_range("FilterBank index out of range");
    }
    return ((static_cast<std::size_t>(n) * m_ + m) * k_ + u) * k_ + v;
  }

  int n_ = 0, m_ = 0, k_ = 0;
  std::vector<float> data_;
};

/// Deterministic pseudo-random fill used by tests and benches so that every
/// run and every implementation sees identical data.
void fill_deterministic(Tensor& t, std::uint32_t seed);
void fill_deterministic(FilterBank& f, std::uint32_t seed);
void fill_deterministic(std::vector<float>& v, std::uint32_t seed);

}  // namespace hetacc::nn
