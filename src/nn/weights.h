#pragma once
// Weight storage for a network: one FilterBank + bias per conv layer, one
// dense matrix + bias per FC layer. Deterministically initialisable so that
// all implementations (reference, streaming simulator, generated HLS code)
// compute on identical data.

#include <map>
#include <vector>

#include "nn/network.h"
#include "nn/tensor.h"

namespace hetacc::nn {

struct FcWeights {
  // Row-major [out_features][in_elems].
  std::vector<float> matrix;
  std::vector<float> bias;
};

struct ConvWeights {
  FilterBank filters;
  std::vector<float> bias;
};

class WeightStore {
 public:
  WeightStore() = default;

  /// Allocates weights for every conv/FC layer in `net`, filled with a
  /// deterministic pseudo-random pattern derived from `seed` and the layer
  /// index.
  static WeightStore deterministic(const Network& net, std::uint32_t seed);

  /// Same, but with all biases zero (useful when validating fixed-point
  /// paths where bias dominates rounding noise).
  static WeightStore deterministic_no_bias(const Network& net,
                                           std::uint32_t seed);

  [[nodiscard]] bool has_conv(std::size_t layer) const {
    return conv_.contains(layer);
  }
  [[nodiscard]] const ConvWeights& conv(std::size_t layer) const;
  [[nodiscard]] ConvWeights& conv(std::size_t layer);
  [[nodiscard]] const FcWeights& fc(std::size_t layer) const;

  void set_conv(std::size_t layer, ConvWeights w) {
    conv_[layer] = std::move(w);
  }
  void set_fc(std::size_t layer, FcWeights w) { fc_[layer] = std::move(w); }

  /// Total weight bytes at the given element width.
  [[nodiscard]] std::int64_t bytes(int bytes_per_elem = 2) const;

 private:
  std::map<std::size_t, ConvWeights> conv_;
  std::map<std::size_t, FcWeights> fc_;
};

}  // namespace hetacc::nn
