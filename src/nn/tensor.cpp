#include "nn/tensor.h"

#include <algorithm>
#include <cmath>

namespace hetacc::nn {

std::string Shape::str() const {
  return "[" + std::to_string(c) + "x" + std::to_string(h) + "x" +
         std::to_string(w) + "]";
}

float Tensor::max_abs_diff(const Tensor& other) const {
  if (shape_ != other.shape_) {
    throw std::invalid_argument("max_abs_diff: shape mismatch " +
                                shape_.str() + " vs " + other.shape_.str());
  }
  float worst = 0.0f;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

namespace {
// xorshift32: tiny, deterministic, platform-independent.
std::uint32_t next(std::uint32_t& s) {
  s ^= s << 13;
  s ^= s >> 17;
  s ^= s << 5;
  return s;
}
float unit(std::uint32_t& s) {
  // Map to [-1, 1) with ~2^-23 granularity; small values keep fixed-point
  // paths inside their dynamic range.
  return (static_cast<float>(next(s) >> 9) / static_cast<float>(1u << 23)) *
             2.0f -
         1.0f;
}
}  // namespace

void fill_deterministic(std::vector<float>& v, std::uint32_t seed) {
  std::uint32_t s = seed ? seed : 0xdeadbeefu;
  for (auto& x : v) x = unit(s);
}

void fill_deterministic(Tensor& t, std::uint32_t seed) {
  fill_deterministic(t.vec(), seed);
}

void fill_deterministic(FilterBank& f, std::uint32_t seed) {
  std::uint32_t s = seed ? seed : 0xabcdef01u;
  float* p = f.data();
  for (std::int64_t i = 0; i < f.size(); ++i) {
    // Filters are kept small so deep stacks of layers don't overflow the
    // 16-bit fixed representation in fused-pipeline tests.
    p[i] = unit(s) * 0.25f;
  }
}

}  // namespace hetacc::nn
