#include "nn/network.h"

#include <sstream>
#include <stdexcept>

#include "support/error.h"

namespace hetacc::nn {

namespace {

/// Parameter validation at build time: degenerate values that parse fine but
/// would later divide the cost model by zero (stride 0), produce empty
/// windows (pad >= kernel means an all-padding window column) or zero-sized
/// tensors. Thrown as ValidationError so the CLI maps them to exit code 2;
/// the *geometry* checks (kernel vs padded input) stay in
/// infer_output_shape as std::invalid_argument.
void validate_params(const Layer& layer) {
  const auto reject = [&](const std::string& what) {
    throw ValidationError(what, "layer '" + layer.name + "'");
  };
  switch (layer.kind) {
    case LayerKind::kInput: {
      const Shape s = std::get<InputParam>(layer.param).shape;
      if (s.c <= 0 || s.h <= 0 || s.w <= 0) {
        reject("input shape " + s.str() + " has a non-positive dimension");
      }
      break;
    }
    case LayerKind::kConv: {
      const auto& p = std::get<ConvParam>(layer.param);
      if (p.out_channels <= 0) reject("conv needs num_output > 0");
      if (p.kernel <= 0) reject("conv needs kernel > 0");
      if (p.stride <= 0) reject("conv needs stride > 0");
      if (p.pad < 0) reject("conv pad must be >= 0");
      if (p.pad >= p.kernel) {
        reject("conv pad " + std::to_string(p.pad) + " >= kernel " +
               std::to_string(p.kernel) + " (all-padding window columns)");
      }
      break;
    }
    case LayerKind::kPool: {
      const auto& p = std::get<PoolParam>(layer.param);
      if (p.kernel <= 0) reject("pool needs kernel > 0");
      if (p.stride <= 0) reject("pool needs stride > 0");
      if (p.pad < 0) reject("pool pad must be >= 0");
      if (p.pad >= p.kernel) {
        reject("pool pad " + std::to_string(p.pad) + " >= kernel " +
               std::to_string(p.kernel));
      }
      break;
    }
    case LayerKind::kLrn: {
      const auto& p = std::get<LrnParam>(layer.param);
      if (p.local_size <= 0) reject("lrn needs local_size > 0");
      break;
    }
    case LayerKind::kFullyConnected: {
      if (std::get<FcParam>(layer.param).out_features <= 0) {
        reject("fc needs num_output > 0");
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace

Layer& Network::add(Layer layer) {
  validate_params(layer);
  if (layers_.empty()) {
    if (layer.kind != LayerKind::kInput) {
      throw std::invalid_argument("first layer must be an input layer");
    }
    layer.in = std::get<InputParam>(layer.param).shape;
  } else {
    if (layer.kind == LayerKind::kInput) {
      throw std::invalid_argument("input layer must be first");
    }
    layer.in = layers_.back().out;
  }
  layer.out = infer_output_shape(layer, layer.in);
  layers_.push_back(std::move(layer));
  return layers_.back();
}

Layer& Network::input(Shape s, std::string name) {
  return add(Layer{LayerKind::kInput, std::move(name), InputParam{s}, {}, {}});
}

Layer& Network::conv(int out_channels, int kernel, int stride, int pad,
                     std::string name, bool fused_relu) {
  return add(Layer{LayerKind::kConv, std::move(name),
                   ConvParam{out_channels, kernel, stride, pad, fused_relu},
                   {},
                   {}});
}

Layer& Network::max_pool(int kernel, int stride, std::string name, int pad) {
  return add(Layer{LayerKind::kPool, std::move(name),
                   PoolParam{PoolMethod::kMax, kernel, stride, pad},
                   {},
                   {}});
}

Layer& Network::avg_pool(int kernel, int stride, std::string name, int pad) {
  return add(Layer{LayerKind::kPool, std::move(name),
                   PoolParam{PoolMethod::kAverage, kernel, stride, pad},
                   {},
                   {}});
}

Layer& Network::lrn(int local_size, float alpha, float beta,
                    std::string name) {
  return add(Layer{LayerKind::kLrn, std::move(name),
                   LrnParam{local_size, alpha, beta, 1.0f},
                   {},
                   {}});
}

Layer& Network::relu(std::string name) {
  return add(Layer{LayerKind::kRelu, std::move(name), ReluParam{}, {}, {}});
}

Layer& Network::fc(int out_features, std::string name, bool fused_relu) {
  return add(Layer{LayerKind::kFullyConnected, std::move(name),
                   FcParam{out_features, fused_relu},
                   {},
                   {}});
}

Layer& Network::softmax(std::string name) {
  return add(
      Layer{LayerKind::kSoftmax, std::move(name), SoftmaxParam{}, {}, {}});
}

std::optional<std::size_t> Network::find(std::string_view name) const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].name == name) return i;
  }
  return std::nullopt;
}

Network Network::slice(std::size_t first, std::size_t last,
                       std::string name) const {
  if (first > last || last >= layers_.size()) {
    throw std::out_of_range("Network::slice range invalid");
  }
  Network out(std::move(name));
  if (layers_[first].kind == LayerKind::kInput) {
    out.add(layers_[first]);
    ++first;
  } else {
    out.input(layers_[first].in, "data");
  }
  for (std::size_t i = first; i <= last; ++i) out.add(layers_[i]);
  return out;
}

Network Network::accelerated_portion() const {
  Network out(name_ + "-accel");
  for (const Layer& l : layers_) {
    switch (l.kind) {
      case LayerKind::kFullyConnected:
      case LayerKind::kSoftmax:
        return out;  // paper §7.3 omits the trailing FC stack
      case LayerKind::kRelu: {
        // Fold into the previous conv if possible (paper §7.2).
        if (!out.empty() && out.layers_.back().kind == LayerKind::kConv) {
          std::get<ConvParam>(out.layers_.back().param).fused_relu = true;
        } else {
          out.add(l);
        }
        break;
      }
      default:
        out.add(l);
    }
  }
  return out;
}

Network Network::coarsen(std::size_t first, std::size_t last,
                         std::string module_name) const {
  if (first == 0 || first > last || last >= layers_.size()) {
    throw std::out_of_range("Network::coarsen range invalid");
  }
  Network out(name_);
  for (std::size_t i = 0; i < first; ++i) out.add(layers_[i]);
  // Synthesize a conv layer with matching shapes. Stride/kernel are chosen
  // so the output shape is exact; op count is annotated via channel fan-in.
  const Shape in = layers_[first].in;
  const Shape target = layers_[last].out;
  if (in.h % target.h != 0 || in.w % target.w != 0 || in.h / target.h != in.w / target.w) {
    throw std::invalid_argument("coarsen: module shapes not stride-expressible");
  }
  const int stride = in.h / target.h;
  Layer pseudo{LayerKind::kConv, std::move(module_name),
               ConvParam{target.c, stride, stride, 0, true},
               {},
               {}};
  out.add(pseudo);
  for (std::size_t i = last + 1; i < layers_.size(); ++i) out.add(layers_[i]);
  return out;
}

std::int64_t Network::total_ops() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.ops();
  return total;
}

std::int64_t Network::total_weight_count() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.weight_count();
  return total;
}

std::int64_t Network::unfused_feature_transfer_bytes(int bytes_per_elem) const {
  std::int64_t total = 0;
  for (const auto& l : layers_) {
    if (l.kind == LayerKind::kInput) continue;
    total += l.in.bytes(bytes_per_elem);
  }
  if (!layers_.empty()) total += layers_.back().out.bytes(bytes_per_elem);
  return total;
}

void Network::infer_shapes() {
  Shape cur{};
  for (auto& l : layers_) {
    l.in = (l.kind == LayerKind::kInput)
               ? std::get<InputParam>(l.param).shape
               : cur;
    l.out = infer_output_shape(l, l.in);
    cur = l.out;
  }
}

std::string Network::summary() const {
  std::ostringstream os;
  os << "Network '" << name_ << "' (" << layers_.size() << " layers, "
     << total_ops() / 1.0e9 << " GOP)\n";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = layers_[i];
    os << "  [" << i << "] " << to_string(l.kind) << " '" << l.name << "' "
       << l.in.str() << " -> " << l.out.str();
    if (l.kind == LayerKind::kConv) {
      const auto& p = l.conv();
      os << "  k=" << p.kernel << " s=" << p.stride << " p=" << p.pad;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace hetacc::nn
