#include "nn/network.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "support/error.h"

namespace hetacc::nn {

namespace {

/// Parameter validation at build time: degenerate values that parse fine but
/// would later divide the cost model by zero (stride 0), produce empty
/// windows (pad >= kernel means an all-padding window column) or zero-sized
/// tensors. Thrown as ValidationError so the CLI maps them to exit code 2;
/// the *geometry* checks (kernel vs padded input) stay in
/// infer_output_shape as std::invalid_argument.
void validate_params(const Layer& layer) {
  const auto reject = [&](const std::string& what) {
    throw ValidationError(what, "layer '" + layer.name + "'");
  };
  switch (layer.kind) {
    case LayerKind::kInput: {
      const Shape s = std::get<InputParam>(layer.param).shape;
      if (s.c <= 0 || s.h <= 0 || s.w <= 0) {
        reject("input shape " + s.str() + " has a non-positive dimension");
      }
      break;
    }
    case LayerKind::kConv: {
      const auto& p = std::get<ConvParam>(layer.param);
      if (p.out_channels <= 0) reject("conv needs num_output > 0");
      if (p.kernel <= 0) reject("conv needs kernel > 0");
      if (p.stride <= 0) reject("conv needs stride > 0");
      if (p.pad < 0) reject("conv pad must be >= 0");
      if (p.pad >= p.kernel) {
        reject("conv pad " + std::to_string(p.pad) + " >= kernel " +
               std::to_string(p.kernel) + " (all-padding window columns)");
      }
      if (p.fan_in < 0) reject("conv fan_in must be >= 0");
      break;
    }
    case LayerKind::kPool: {
      const auto& p = std::get<PoolParam>(layer.param);
      if (p.kernel <= 0) reject("pool needs kernel > 0");
      if (p.stride <= 0) reject("pool needs stride > 0");
      if (p.pad < 0) reject("pool pad must be >= 0");
      if (p.pad >= p.kernel) {
        reject("pool pad " + std::to_string(p.pad) + " >= kernel " +
               std::to_string(p.kernel));
      }
      break;
    }
    case LayerKind::kLrn: {
      const auto& p = std::get<LrnParam>(layer.param);
      if (p.local_size <= 0) reject("lrn needs local_size > 0");
      break;
    }
    case LayerKind::kFullyConnected: {
      if (std::get<FcParam>(layer.param).out_features <= 0) {
        reject("fc needs num_output > 0");
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace

Layer& Network::add(Layer layer) {
  if (layers_.empty() || layer.kind == LayerKind::kInput) {
    return add_from(std::move(layer), {});
  }
  return add_from(std::move(layer), {layers_.size() - 1});
}

Layer& Network::add_from(Layer layer, std::vector<std::size_t> from) {
  validate_params(layer);
  if (layers_.empty()) {
    if (layer.kind != LayerKind::kInput) {
      throw std::invalid_argument("first layer must be an input layer");
    }
    if (!from.empty()) {
      throw std::invalid_argument("input layer takes no inputs");
    }
    layer.in = std::get<InputParam>(layer.param).shape;
    layer.out = layer.in;
    layer.inputs.clear();
    layers_.push_back(std::move(layer));
    return layers_.back();
  }
  if (layer.kind == LayerKind::kInput) {
    throw std::invalid_argument("input layer must be first");
  }
  if (from.empty()) {
    throw std::invalid_argument("layer '" + layer.name + "' needs an input");
  }
  for (std::size_t i = 0; i < from.size(); ++i) {
    if (from[i] >= layers_.size()) {
      throw std::out_of_range("layer '" + layer.name +
                              "' references a producer that does not exist");
    }
    for (std::size_t j = i + 1; j < from.size(); ++j) {
      if (from[i] == from[j]) {
        throw std::invalid_argument("layer '" + layer.name +
                                    "' lists the same producer twice");
      }
    }
  }
  std::vector<Shape> ins;
  ins.reserve(from.size());
  for (std::size_t u : from) ins.push_back(layers_[u].out);
  layer.out = infer_output_shape(layer, ins);
  layer.in = layer.is_merge() ? layer.out : ins.front();
  layer.inputs = std::move(from);
  layers_.push_back(std::move(layer));
  return layers_.back();
}

Layer& Network::input(Shape s, std::string name) {
  return add(Layer{LayerKind::kInput, std::move(name), InputParam{s}, {}, {}});
}

Layer& Network::conv(int out_channels, int kernel, int stride, int pad,
                     std::string name, bool fused_relu) {
  return add(Layer{LayerKind::kConv, std::move(name),
                   ConvParam{out_channels, kernel, stride, pad, fused_relu},
                   {},
                   {}});
}

Layer& Network::max_pool(int kernel, int stride, std::string name, int pad) {
  return add(Layer{LayerKind::kPool, std::move(name),
                   PoolParam{PoolMethod::kMax, kernel, stride, pad},
                   {},
                   {}});
}

Layer& Network::avg_pool(int kernel, int stride, std::string name, int pad) {
  return add(Layer{LayerKind::kPool, std::move(name),
                   PoolParam{PoolMethod::kAverage, kernel, stride, pad},
                   {},
                   {}});
}

Layer& Network::lrn(int local_size, float alpha, float beta,
                    std::string name) {
  return add(Layer{LayerKind::kLrn, std::move(name),
                   LrnParam{local_size, alpha, beta, 1.0f},
                   {},
                   {}});
}

Layer& Network::relu(std::string name) {
  return add(Layer{LayerKind::kRelu, std::move(name), ReluParam{}, {}, {}});
}

Layer& Network::fc(int out_features, std::string name, bool fused_relu) {
  return add(Layer{LayerKind::kFullyConnected, std::move(name),
                   FcParam{out_features, fused_relu},
                   {},
                   {}});
}

Layer& Network::softmax(std::string name) {
  return add(
      Layer{LayerKind::kSoftmax, std::move(name), SoftmaxParam{}, {}, {}});
}

std::size_t Network::conv_from(std::size_t from, int out_channels, int kernel,
                               int stride, int pad, std::string name,
                               bool fused_relu) {
  add_from(Layer{LayerKind::kConv, std::move(name),
                 ConvParam{out_channels, kernel, stride, pad, fused_relu},
                 {},
                 {}},
           {from});
  return layers_.size() - 1;
}

std::size_t Network::max_pool_from(std::size_t from, int kernel, int stride,
                                   std::string name, int pad) {
  add_from(Layer{LayerKind::kPool, std::move(name),
                 PoolParam{PoolMethod::kMax, kernel, stride, pad},
                 {},
                 {}},
           {from});
  return layers_.size() - 1;
}

std::size_t Network::avg_pool_from(std::size_t from, int kernel, int stride,
                                   std::string name, int pad) {
  add_from(Layer{LayerKind::kPool, std::move(name),
                 PoolParam{PoolMethod::kAverage, kernel, stride, pad},
                 {},
                 {}},
           {from});
  return layers_.size() - 1;
}

std::size_t Network::relu_from(std::size_t from, std::string name) {
  add_from(Layer{LayerKind::kRelu, std::move(name), ReluParam{}, {}, {}},
           {from});
  return layers_.size() - 1;
}

std::size_t Network::concat(std::vector<std::size_t> from, std::string name) {
  add_from(Layer{LayerKind::kConcat, std::move(name), ConcatParam{}, {}, {}},
           std::move(from));
  return layers_.size() - 1;
}

std::size_t Network::eltwise_add(std::vector<std::size_t> from,
                                 std::string name) {
  add_from(
      Layer{LayerKind::kEltwiseAdd, std::move(name), EltwiseParam{}, {}, {}},
      std::move(from));
  return layers_.size() - 1;
}

std::optional<std::size_t> Network::find(std::string_view name) const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].name == name) return i;
  }
  return std::nullopt;
}

bool Network::is_chain() const {
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    if (layers_[i].inputs.size() != 1 || layers_[i].inputs[0] != i - 1) {
      return false;
    }
  }
  return true;
}

std::vector<std::size_t> Network::consumers(std::size_t i) const {
  std::vector<std::size_t> out;
  for (std::size_t j = i + 1; j < layers_.size(); ++j) {
    if (std::find(layers_[j].inputs.begin(), layers_[j].inputs.end(), i) !=
        layers_[j].inputs.end()) {
      out.push_back(j);
    }
  }
  return out;
}

Network Network::slice(std::size_t first, std::size_t last,
                       std::string name) const {
  if (first > last || last >= layers_.size()) {
    throw std::out_of_range("Network::slice range invalid");
  }
  Network out(std::move(name));
  std::vector<std::size_t> map(layers_.size(), static_cast<std::size_t>(-1));
  std::size_t begin = first;
  if (layers_[first].kind == LayerKind::kInput) {
    out.add(layers_[first]);
    map[first] = 0;
    begin = first + 1;
  } else {
    // The range must read a single external producer, which the synthetic
    // input layer stands in for.
    std::size_t ext = static_cast<std::size_t>(-1);
    for (std::size_t i = first; i <= last; ++i) {
      for (std::size_t u : layers_[i].inputs) {
        if (u >= first) continue;
        if (ext != static_cast<std::size_t>(-1) && ext != u) {
          throw std::invalid_argument(
              "Network::slice: range reads more than one external producer");
        }
        ext = u;
      }
    }
    out.input(layers_[first].in, "data");
  }
  for (std::size_t i = begin; i <= last; ++i) {
    Layer l = layers_[i];
    std::vector<std::size_t> from;
    from.reserve(l.inputs.size());
    for (std::size_t u : l.inputs) {
      from.push_back(map[u] == static_cast<std::size_t>(-1) ? 0 : map[u]);
    }
    l.inputs.clear();
    out.add_from(std::move(l), std::move(from));
    map[i] = out.size() - 1;
  }
  return out;
}

Network Network::accelerated_portion() const {
  Network out(name_ + "-accel");
  std::vector<std::size_t> map(layers_.size(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = layers_[i];
    if (l.kind == LayerKind::kFullyConnected ||
        l.kind == LayerKind::kSoftmax) {
      break;  // paper §7.3 omits the trailing FC stack
    }
    if (l.kind == LayerKind::kRelu && l.inputs.size() == 1) {
      // Fold into the producing conv if it has no other consumer (§7.2);
      // a conv tapped by a skip edge must keep its pre-ReLU output.
      const std::size_t p = l.inputs[0];
      if (map[p] != static_cast<std::size_t>(-1) &&
          out.layers_[map[p]].kind == LayerKind::kConv &&
          consumers(p).size() == 1) {
        std::get<ConvParam>(out.layers_[map[p]].param).fused_relu = true;
        map[i] = map[p];
        continue;
      }
    }
    std::vector<std::size_t> from;
    from.reserve(l.inputs.size());
    bool producers_present = true;
    for (std::size_t u : l.inputs) {
      if (map[u] == static_cast<std::size_t>(-1)) {
        producers_present = false;
        break;
      }
      from.push_back(map[u]);
    }
    if (!producers_present) break;
    Layer copy = l;
    copy.inputs.clear();
    out.add_from(std::move(copy), std::move(from));
    map[i] = out.size() - 1;
  }
  return out;
}

Network Network::coarsen(std::size_t first, std::size_t last,
                         std::string module_name) const {
  if (first == 0 || first > last || last >= layers_.size()) {
    throw std::out_of_range("Network::coarsen range invalid");
  }
  // The module must be a single-entry/single-exit composition: exactly one
  // external producer feeds it, and only layer `last` is read from outside.
  // A chain segment is the degenerate case; an Inception/ResNet module is a
  // parallel composition collapsed to one pseudo-layer.
  std::size_t ext = static_cast<std::size_t>(-1);
  for (std::size_t i = first; i <= last; ++i) {
    for (std::size_t u : layers_[i].inputs) {
      if (u >= first) continue;
      if (ext != static_cast<std::size_t>(-1) && ext != u) {
        throw std::invalid_argument("coarsen: module is not single-entry");
      }
      ext = u;
    }
  }
  for (std::size_t i = first; i < last; ++i) {
    for (std::size_t c : consumers(i)) {
      if (c > last) {
        throw std::invalid_argument("coarsen: module is not single-exit");
      }
    }
  }
  // Synthesize a conv layer with matching shapes. Stride/kernel are chosen
  // so the output shape is exact; op count is annotated via channel fan-in.
  const Shape in = layers_[ext].out;
  const Shape target = layers_[last].out;
  if (in.h % target.h != 0 || in.w % target.w != 0 || in.h / target.h != in.w / target.w) {
    throw std::invalid_argument("coarsen: module shapes not stride-expressible");
  }
  const int stride = in.h / target.h;
  std::int64_t module_mults = 0;
  for (std::size_t i = first; i <= last; ++i) module_mults += layers_[i].mults();
  const std::int64_t denom =
      static_cast<std::int64_t>(stride) * stride * target.elems();
  int fan_in = 0;
  if (module_mults > 0 && denom > 0) {
    fan_in = static_cast<int>(
        std::max<std::int64_t>(1, (module_mults + denom - 1) / denom));
  }
  Network out(name_);
  std::vector<std::size_t> map(layers_.size(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < first; ++i) {
    Layer copy = layers_[i];
    std::vector<std::size_t> from;
    from.reserve(copy.inputs.size());
    for (std::size_t u : copy.inputs) from.push_back(map[u]);
    copy.inputs.clear();
    out.add_from(std::move(copy), std::move(from));
    map[i] = out.size() - 1;
  }
  Layer pseudo{LayerKind::kConv, std::move(module_name),
               ConvParam{target.c, stride, stride, 0, true, fan_in},
               {},
               {}};
  out.add_from(std::move(pseudo), {map[ext]});
  const std::size_t pseudo_idx = out.size() - 1;
  for (std::size_t i = first; i <= last; ++i) map[i] = pseudo_idx;
  for (std::size_t i = last + 1; i < layers_.size(); ++i) {
    Layer copy = layers_[i];
    std::vector<std::size_t> from;
    from.reserve(copy.inputs.size());
    for (std::size_t u : copy.inputs) from.push_back(map[u]);
    copy.inputs.clear();
    out.add_from(std::move(copy), std::move(from));
    map[i] = out.size() - 1;
  }
  return out;
}

std::int64_t Network::total_ops() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.ops();
  return total;
}

std::int64_t Network::total_weight_count() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.weight_count();
  return total;
}

std::int64_t Network::unfused_feature_transfer_bytes(int bytes_per_elem) const {
  // Every edge moves its producer's output once per consumer; every sink
  // layer's output is written back. On a chain this is exactly "input of
  // every layer + output of the last".
  std::int64_t total = 0;
  std::vector<char> has_consumer(layers_.size(), 0);
  for (const auto& l : layers_) {
    for (std::size_t u : l.inputs) {
      total += layers_[u].out.bytes(bytes_per_elem);
      has_consumer[u] = 1;
    }
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (!has_consumer[i]) total += layers_[i].out.bytes(bytes_per_elem);
  }
  return total;
}

void Network::infer_shapes() {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Layer& l = layers_[i];
    if (l.kind == LayerKind::kInput) {
      l.in = std::get<InputParam>(l.param).shape;
      l.out = l.in;
      continue;
    }
    std::vector<Shape> ins;
    ins.reserve(l.inputs.size());
    for (std::size_t u : l.inputs) {
      if (u >= i) {
        throw std::invalid_argument("layer '" + l.name +
                                    "' has a forward-pointing edge");
      }
      ins.push_back(layers_[u].out);
    }
    l.out = infer_output_shape(l, ins);
    l.in = l.is_merge() ? l.out : ins.front();
  }
}

std::string Network::summary() const {
  std::ostringstream os;
  os << "Network '" << name_ << "' (" << layers_.size() << " layers, "
     << total_ops() / 1.0e9 << " GOP)\n";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = layers_[i];
    os << "  [" << i << "] " << to_string(l.kind) << " '" << l.name << "' "
       << l.in.str() << " -> " << l.out.str();
    if (l.kind == LayerKind::kConv) {
      const auto& p = l.conv();
      os << "  k=" << p.kernel << " s=" << p.stride << " p=" << p.pad;
    }
    // Annotate only non-chain edges so chain summaries stay byte-identical.
    if (l.kind != LayerKind::kInput &&
        !(l.inputs.size() == 1 && l.inputs[0] == i - 1)) {
      os << "  <- ";
      for (std::size_t k = 0; k < l.inputs.size(); ++k) {
        if (k) os << ",";
        os << layers_[l.inputs[k]].name;
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace hetacc::nn
