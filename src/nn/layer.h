#pragma once
// Layer descriptors for the CNN graphs the paper's optimizer operates on:
// linear chains plus the series-parallel branch/merge nodes of Inception
// (channel concat) and ResNet (elementwise add). Shapes follow Caffe
// semantics (floor division for conv, ceil for pool).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "nn/tensor.h"

namespace hetacc::nn {

enum class LayerKind : std::uint8_t {
  kInput,
  kConv,
  kPool,
  kLrn,
  kRelu,
  kFullyConnected,
  kSoftmax,
  kEltwiseAdd,  ///< merge: elementwise sum of equal-shaped inputs (ResNet)
  kConcat,      ///< merge: channel concatenation (Inception)
};

[[nodiscard]] std::string_view to_string(LayerKind k);

enum class PoolMethod : std::uint8_t { kMax, kAverage };

struct ConvParam {
  int out_channels = 0;
  int kernel = 0;
  int stride = 1;
  int pad = 0;
  bool fused_relu = false;  ///< paper §7.2: "ReLU layers can be easily integrated"
  /// Channel fan-in override for op counting (0 = use the input shape's
  /// channel count). Network::coarsen() sets this on the pseudo layer that
  /// replaces a module so its compute cost matches the module it stands for
  /// (§7.1 coarsening would otherwise undercount a module's work).
  int fan_in = 0;
};

struct PoolParam {
  PoolMethod method = PoolMethod::kMax;
  int kernel = 0;
  int stride = 1;
  int pad = 0;
};

/// Local response normalization across channels (AlexNet style).
struct LrnParam {
  int local_size = 5;
  float alpha = 1e-4f;
  float beta = 0.75f;
  float k = 1.0f;
};

struct FcParam {
  int out_features = 0;
  bool fused_relu = false;
};

struct InputParam {
  Shape shape;
};

struct ReluParam {};
struct SoftmaxParam {};

/// Elementwise sum of >= 2 equal-shaped inputs (ResNet skip connections).
struct EltwiseParam {};

/// Channel concatenation of >= 2 inputs with equal spatial dims (Inception).
struct ConcatParam {};

using LayerParam = std::variant<InputParam, ConvParam, PoolParam, LrnParam,
                                ReluParam, FcParam, SoftmaxParam, EltwiseParam,
                                ConcatParam>;

/// One layer of a network graph. `inputs` holds the indices of the producer
/// layers inside the owning Network; because every edge points backwards the
/// layer vector is always a valid topological order. For a plain chain every
/// layer i has inputs == {i-1}. Input/output shapes are filled in by
/// Network::infer_shapes().
struct Layer {
  LayerKind kind = LayerKind::kInput;
  std::string name;
  LayerParam param;
  Shape in;   ///< inferred (for merges: equal to `out`)
  Shape out;  ///< inferred
  std::vector<std::size_t> inputs;  ///< producer layer indices (empty for input)

  [[nodiscard]] const ConvParam& conv() const {
    return expect<ConvParam>(LayerKind::kConv);
  }
  [[nodiscard]] const PoolParam& pool() const {
    return expect<PoolParam>(LayerKind::kPool);
  }
  [[nodiscard]] const LrnParam& lrn() const {
    return expect<LrnParam>(LayerKind::kLrn);
  }
  [[nodiscard]] const FcParam& fc() const {
    return expect<FcParam>(LayerKind::kFullyConnected);
  }

  /// Number of arithmetic operations (multiply and add each count as one,
  /// the convention behind the paper's GOPS figures).
  [[nodiscard]] std::int64_t ops() const;

  /// Number of scalar multiplications the conventional algorithm performs.
  [[nodiscard]] std::int64_t mults() const;

  /// Weight (+bias) parameter count.
  [[nodiscard]] std::int64_t weight_count() const;

  /// True for layers whose output element depends on a KxK window of the
  /// input — the layers the fusion pyramid (paper §4.1) is built from.
  [[nodiscard]] bool is_windowed() const {
    return kind == LayerKind::kConv || kind == LayerKind::kPool ||
           kind == LayerKind::kLrn;
  }

  /// True for the branch-merging layer kinds (concat / eltwise-add).
  [[nodiscard]] bool is_merge() const {
    return kind == LayerKind::kEltwiseAdd || kind == LayerKind::kConcat;
  }

  /// Channel fan-in used for conv op/weight accounting: the annotated
  /// override when set (coarsened modules), otherwise the input channels.
  [[nodiscard]] int conv_fan_in() const {
    const ConvParam& p = conv();
    return p.fan_in > 0 ? p.fan_in : in.c;
  }

  /// Spatial window size and stride as seen by the line-buffer design.
  /// LRN is window 1 spatially (it reaches across channels only).
  [[nodiscard]] int window() const;
  [[nodiscard]] int stride() const;
  [[nodiscard]] int padding() const;

 private:
  template <typename T>
  const T& expect(LayerKind want) const {
    if (kind != want || !std::holds_alternative<T>(param)) {
      throw std::logic_error("layer '" + name + "' is not a " +
                             std::string(to_string(want)));
    }
    return std::get<T>(param);
  }
};

/// Output shape of `layer` applied to input shape `in` (Caffe rounding).
/// Only valid for single-input layer kinds.
[[nodiscard]] Shape infer_output_shape(const Layer& layer, const Shape& in);

/// Output shape of `layer` applied to the producer shapes in graph order.
/// Handles the merge kinds: concat sums channels (equal spatial dims
/// required), eltwise-add requires all shapes equal. Throws
/// std::invalid_argument on arity or shape mismatches.
[[nodiscard]] Shape infer_output_shape(const Layer& layer,
                                       const std::vector<Shape>& ins);

}  // namespace hetacc::nn
