#include "nn/model_zoo.h"

namespace hetacc::nn {

Network alexnet() {
  Network net("alexnet");
  net.input({3, 227, 227});
  net.conv(96, 11, 4, 0, "conv1");
  net.lrn(5, 1e-4f, 0.75f, "norm1");
  net.max_pool(3, 2, "pool1");
  net.conv(256, 5, 1, 2, "conv2");
  net.lrn(5, 1e-4f, 0.75f, "norm2");
  net.max_pool(3, 2, "pool2");
  net.conv(384, 3, 1, 1, "conv3");
  net.conv(384, 3, 1, 1, "conv4");
  net.conv(256, 3, 1, 1, "conv5");
  net.max_pool(3, 2, "pool5");
  net.fc(4096, "fc6");
  net.fc(4096, "fc7");
  net.fc(1000, "fc8", /*fused_relu=*/false);
  net.softmax();
  return net;
}

namespace {
void vgg_block(Network& net, int convs, int channels, int block) {
  for (int i = 1; i <= convs; ++i) {
    net.conv(channels, 3, 1, 1,
             "conv" + std::to_string(block) + "_" + std::to_string(i));
  }
  net.max_pool(2, 2, "pool" + std::to_string(block));
}

Network vgg(const char* name, int c3, int c4plus) {
  Network net(name);
  net.input({3, 224, 224});
  vgg_block(net, 2, 64, 1);
  vgg_block(net, 2, 128, 2);
  vgg_block(net, c3, 256, 3);
  vgg_block(net, c4plus, 512, 4);
  vgg_block(net, c4plus, 512, 5);
  net.fc(4096, "fc6");
  net.fc(4096, "fc7");
  net.fc(1000, "fc8", /*fused_relu=*/false);
  net.softmax();
  return net;
}
}  // namespace

Network vgg_e() { return vgg("vgg-e", 4, 4); }
Network vgg16() { return vgg("vgg16", 3, 3); }

Network vgg_e_head() {
  const Network full = vgg_e();
  // Paper fuses "the first five convolutional layers and two pooling
  // layers": conv1_1, conv1_2, pool1, conv2_1, conv2_2, pool2, conv3_1 —
  // indices 1..7 after the input layer.
  return full.slice(0, 7, "vgg-e-head").accelerated_portion();
}

Network alexnet_accel() { return alexnet().accelerated_portion(); }

Network tiny_net(int channels, int spatial) {
  Network net("tiny");
  net.input({channels, spatial, spatial});
  net.conv(channels, 3, 1, 1, "c1");
  net.conv(channels * 2, 3, 1, 1, "c2");
  net.max_pool(2, 2, "p1");
  net.conv(channels * 2, 3, 1, 1, "c3");
  return net;
}

Network nin() {
  Network net("nin");
  net.input({3, 224, 224});
  net.conv(96, 11, 4, 0, "conv1");
  net.conv(96, 1, 1, 0, "cccp1");
  net.conv(96, 1, 1, 0, "cccp2");
  net.max_pool(3, 2, "pool1");
  net.conv(256, 5, 1, 2, "conv2");
  net.conv(256, 1, 1, 0, "cccp3");
  net.conv(256, 1, 1, 0, "cccp4");
  net.max_pool(3, 2, "pool2");
  net.conv(384, 3, 1, 1, "conv3");
  net.conv(384, 1, 1, 0, "cccp5");
  net.conv(384, 1, 1, 0, "cccp6");
  net.max_pool(3, 2, "pool3");
  net.conv(1024, 3, 1, 1, "conv4");
  net.conv(1024, 1, 1, 0, "cccp7");
  net.conv(1000, 1, 1, 0, "cccp8");
  net.avg_pool(6, 1, "pool4");
  net.softmax();
  return net;
}

Network modular_net(int modules) {
  Network net("modular");
  net.input({3, 112, 112});
  net.conv(32, 3, 1, 1, "stem");
  net.max_pool(2, 2, "stem_pool");
  int ch = 64;
  for (int m = 1; m <= modules; ++m) {
    const std::string base = "mod" + std::to_string(m);
    net.conv(ch, 3, 1, 1, base + "_a");
    net.conv(ch, 3, 1, 1, base + "_b");
    if (m % 2 == 0) {
      net.max_pool(2, 2, base + "_pool");
      ch = std::min(ch * 2, 256);
    }
  }
  return net;
}

Network coarsen_modules(const Network& net) {
  Network out = net;
  // Collapse every mod*_a / mod*_b pair (walking backwards so indices stay
  // valid across coarsening).
  for (std::size_t i = out.size(); i-- > 1;) {
    if (out[i].name.size() > 2 &&
        out[i].name.substr(out[i].name.size() - 2) == "_b" &&
        out[i].name.rfind("mod", 0) == 0) {
      const std::string module =
          out[i].name.substr(0, out[i].name.size() - 2);
      out = out.coarsen(i - 1, i, module);
    }
  }
  return out;
}

Network conv_chain(int depth, int channels, int spatial) {
  Network net("chain" + std::to_string(depth));
  net.input({channels, spatial, spatial});
  for (int i = 0; i < depth; ++i) {
    net.conv(channels, 3, 1, 1, "c" + std::to_string(i + 1));
  }
  return net;
}

}  // namespace hetacc::nn
