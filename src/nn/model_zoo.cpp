#include "nn/model_zoo.h"

namespace hetacc::nn {

Network alexnet() {
  Network net("alexnet");
  net.input({3, 227, 227});
  net.conv(96, 11, 4, 0, "conv1");
  net.lrn(5, 1e-4f, 0.75f, "norm1");
  net.max_pool(3, 2, "pool1");
  net.conv(256, 5, 1, 2, "conv2");
  net.lrn(5, 1e-4f, 0.75f, "norm2");
  net.max_pool(3, 2, "pool2");
  net.conv(384, 3, 1, 1, "conv3");
  net.conv(384, 3, 1, 1, "conv4");
  net.conv(256, 3, 1, 1, "conv5");
  net.max_pool(3, 2, "pool5");
  net.fc(4096, "fc6");
  net.fc(4096, "fc7");
  net.fc(1000, "fc8", /*fused_relu=*/false);
  net.softmax();
  return net;
}

namespace {
void vgg_block(Network& net, int convs, int channels, int block) {
  for (int i = 1; i <= convs; ++i) {
    net.conv(channels, 3, 1, 1,
             "conv" + std::to_string(block) + "_" + std::to_string(i));
  }
  net.max_pool(2, 2, "pool" + std::to_string(block));
}

Network vgg(const char* name, int c3, int c4plus) {
  Network net(name);
  net.input({3, 224, 224});
  vgg_block(net, 2, 64, 1);
  vgg_block(net, 2, 128, 2);
  vgg_block(net, c3, 256, 3);
  vgg_block(net, c4plus, 512, 4);
  vgg_block(net, c4plus, 512, 5);
  net.fc(4096, "fc6");
  net.fc(4096, "fc7");
  net.fc(1000, "fc8", /*fused_relu=*/false);
  net.softmax();
  return net;
}
}  // namespace

Network vgg_e() { return vgg("vgg-e", 4, 4); }
Network vgg16() { return vgg("vgg16", 3, 3); }

Network vgg_e_head() {
  const Network full = vgg_e();
  // Paper fuses "the first five convolutional layers and two pooling
  // layers": conv1_1, conv1_2, pool1, conv2_1, conv2_2, pool2, conv3_1 —
  // indices 1..7 after the input layer.
  return full.slice(0, 7, "vgg-e-head").accelerated_portion();
}

Network alexnet_accel() { return alexnet().accelerated_portion(); }

Network tiny_net(int channels, int spatial) {
  Network net("tiny");
  net.input({channels, spatial, spatial});
  net.conv(channels, 3, 1, 1, "c1");
  net.conv(channels * 2, 3, 1, 1, "c2");
  net.max_pool(2, 2, "p1");
  net.conv(channels * 2, 3, 1, 1, "c3");
  return net;
}

Network nin() {
  Network net("nin");
  net.input({3, 224, 224});
  net.conv(96, 11, 4, 0, "conv1");
  net.conv(96, 1, 1, 0, "cccp1");
  net.conv(96, 1, 1, 0, "cccp2");
  net.max_pool(3, 2, "pool1");
  net.conv(256, 5, 1, 2, "conv2");
  net.conv(256, 1, 1, 0, "cccp3");
  net.conv(256, 1, 1, 0, "cccp4");
  net.max_pool(3, 2, "pool2");
  net.conv(384, 3, 1, 1, "conv3");
  net.conv(384, 1, 1, 0, "cccp5");
  net.conv(384, 1, 1, 0, "cccp6");
  net.max_pool(3, 2, "pool3");
  net.conv(1024, 3, 1, 1, "conv4");
  net.conv(1024, 1, 1, 0, "cccp7");
  net.conv(1000, 1, 1, 0, "cccp8");
  net.avg_pool(6, 1, "pool4");
  net.softmax();
  return net;
}

Network inception_mini() {
  Network net("inception-mini");
  net.input({3, 64, 64});
  net.conv(32, 3, 1, 1, "stem1");
  net.conv(32, 3, 1, 1, "stem2");
  net.max_pool(2, 2, "stem_pool");  // 32 x 32 x 32
  const std::size_t stem = net.size() - 1;
  // One inception module: four arms off the stem joined by a channel
  // concat. 8 layers total, sized to fit one fusion group.
  const std::size_t b1 = net.conv_from(stem, 16, 1, 1, 0, "inc1_1x1");
  const std::size_t b3r = net.conv_from(stem, 32, 1, 1, 0, "inc1_3x3_reduce");
  const std::size_t b3 = net.conv_from(b3r, 64, 3, 1, 1, "inc1_3x3");
  const std::size_t b5r = net.conv_from(stem, 8, 1, 1, 0, "inc1_5x5_reduce");
  const std::size_t b5 = net.conv_from(b5r, 16, 5, 1, 2, "inc1_5x5");
  const std::size_t pp = net.max_pool_from(stem, 3, 1, "inc1_pool", 1);
  const std::size_t pj = net.conv_from(pp, 16, 1, 1, 0, "inc1_pool_proj");
  const std::size_t cc = net.concat({b1, b3, b5, pj}, "inc1_concat");
  net.max_pool_from(cc, 2, 2, "pool2");  // 112 x 16 x 16
  net.conv(64, 3, 1, 1, "conv_tail");
  net.fc(10, "fc", /*fused_relu=*/false);
  net.softmax();
  return net;
}

Network resnet_mini() {
  Network net("resnet-mini");
  net.input({3, 56, 56});
  net.conv(16, 3, 1, 1, "stem1");
  net.conv(16, 3, 1, 1, "stem2");
  net.max_pool(2, 2, "stem_pool");  // 16 x 28 x 28
  std::size_t x = net.size() - 1;
  for (int b = 1; b <= 2; ++b) {
    const std::string base = "res" + std::to_string(b);
    const std::size_t c1 =
        net.conv_from(x, 16, 3, 1, 1, base + "_conv1", /*fused_relu=*/true);
    const std::size_t c2 =
        net.conv_from(c1, 16, 3, 1, 1, base + "_conv2", /*fused_relu=*/false);
    const std::size_t add = net.eltwise_add({x, c2}, base + "_add");
    x = net.relu_from(add, base + "_relu");
  }
  net.avg_pool_from(x, 28, 1, "global_pool");
  net.fc(10, "fc", /*fused_relu=*/false);
  net.softmax();
  return net;
}

Network modular_net(int modules) {
  Network net("modular");
  net.input({3, 112, 112});
  net.conv(32, 3, 1, 1, "stem");
  net.max_pool(2, 2, "stem_pool");
  int ch = 64;
  for (int m = 1; m <= modules; ++m) {
    const std::string base = "mod" + std::to_string(m);
    net.conv(ch, 3, 1, 1, base + "_a");
    net.conv(ch, 3, 1, 1, base + "_b");
    if (m % 2 == 0) {
      net.max_pool(2, 2, base + "_pool");
      ch = std::min(ch * 2, 256);
    }
  }
  return net;
}

Network coarsen_modules(const Network& net) {
  Network out = net;
  // Collapse every mod*_a / mod*_b pair (walking backwards so indices stay
  // valid across coarsening).
  for (std::size_t i = out.size(); i-- > 1;) {
    if (out[i].name.size() > 2 &&
        out[i].name.substr(out[i].name.size() - 2) == "_b" &&
        out[i].name.rfind("mod", 0) == 0) {
      const std::string module =
          out[i].name.substr(0, out[i].name.size() - 2);
      out = out.coarsen(i - 1, i, module);
    }
  }
  return out;
}

Network conv_chain(int depth, int channels, int spatial) {
  Network net("chain" + std::to_string(depth));
  net.input({channels, spatial, spatial});
  for (int i = 0; i < depth; ++i) {
    net.conv(channels, 3, 1, 1, "c" + std::to_string(i + 1));
  }
  return net;
}

}  // namespace hetacc::nn
