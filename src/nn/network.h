#pragma once
// Network container + builder. Layers are stored in topological order with
// backward-pointing edges (Layer::inputs), so the container represents a
// series-parallel DAG: plain chains (every layer feeds the next), Inception
// modules (branch + channel concat) and ResNet blocks (branch + eltwise
// add). GoogLeNet-style module graphs can still be coarsened into a single
// pseudo-layer (paper §7.1) via `coarsen`, which now collapses a parallel
// composition; the chain case is the degenerate form.

#include <optional>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace hetacc::nn {

class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Appends a layer consuming the previous layer (chain edge). Shapes are
  /// inferred immediately so callers can chain builder calls and read
  /// `back().out`.
  Layer& add(Layer layer);

  /// Appends a layer consuming the given producer layers. All indices must
  /// refer to existing layers (< size()), which keeps the layer vector a
  /// valid topological order by construction. Merge kinds take >= 2 inputs;
  /// every other non-input kind takes exactly 1.
  Layer& add_from(Layer layer, std::vector<std::size_t> from);

  // Chain builder helpers --------------------------------------------------
  Layer& input(Shape s, std::string name = "data");
  Layer& conv(int out_channels, int kernel, int stride, int pad,
              std::string name, bool fused_relu = true);
  Layer& max_pool(int kernel, int stride, std::string name, int pad = 0);
  Layer& avg_pool(int kernel, int stride, std::string name, int pad = 0);
  Layer& lrn(int local_size, float alpha, float beta, std::string name);
  Layer& relu(std::string name);
  Layer& fc(int out_features, std::string name, bool fused_relu = true);
  Layer& softmax(std::string name = "prob");

  // Graph builder helpers: explicit producer(s), return the new layer's
  // index for later edge references.
  std::size_t conv_from(std::size_t from, int out_channels, int kernel,
                        int stride, int pad, std::string name,
                        bool fused_relu = true);
  std::size_t max_pool_from(std::size_t from, int kernel, int stride,
                            std::string name, int pad = 0);
  std::size_t avg_pool_from(std::size_t from, int kernel, int stride,
                            std::string name, int pad = 0);
  std::size_t relu_from(std::size_t from, std::string name);
  std::size_t concat(std::vector<std::size_t> from, std::string name);
  std::size_t eltwise_add(std::vector<std::size_t> from, std::string name);

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] bool empty() const { return layers_.empty(); }
  [[nodiscard]] const Layer& operator[](std::size_t i) const {
    return layers_.at(i);
  }
  [[nodiscard]] Layer& operator[](std::size_t i) { return layers_.at(i); }
  [[nodiscard]] auto begin() const { return layers_.begin(); }
  [[nodiscard]] auto end() const { return layers_.end(); }
  [[nodiscard]] const std::vector<Layer>& layers() const { return layers_; }

  [[nodiscard]] std::optional<std::size_t> find(std::string_view name) const;

  /// True when every layer i > 0 consumes exactly layer i-1 — the linear
  /// world the paper's chain DP was written for.
  [[nodiscard]] bool is_chain() const;

  /// Indices of the layers consuming layer i's output, ascending.
  [[nodiscard]] std::vector<std::size_t> consumers(std::size_t i) const;

  /// Sub-network consisting of layers [first, last] (inclusive), preceded by
  /// a synthetic input layer matching the range's single external input.
  /// This is how experiment harnesses carve out "the first five
  /// convolutional layers and two pooling layers" of VGG (paper §7.2).
  /// Throws std::invalid_argument if the range reads more than one external
  /// producer (not single-entry).
  [[nodiscard]] Network slice(std::size_t first, std::size_t last,
                              std::string name) const;

  /// Network with only the layers the FPGA accelerator processes: the paper
  /// omits trailing FC/softmax layers (§7.3) and folds standalone ReLU into
  /// the preceding convolution when that conv has no other consumer (§7.2).
  [[nodiscard]] Network accelerated_portion() const;

  /// Replaces layers [first, last] by a single conv pseudo-layer with the
  /// same input/output shapes — the "treat every module as a single layer"
  /// coarsening of §7.1. The range must be single-entry/single-exit (a
  /// series or parallel composition); its op count is carried by the pseudo
  /// layer via the ConvParam::fan_in annotation. Chains are the degenerate
  /// case. Throws std::out_of_range on a bad range, std::invalid_argument on
  /// non-SESE or non-stride-expressible modules.
  [[nodiscard]] Network coarsen(std::size_t first, std::size_t last,
                                std::string module_name) const;

  [[nodiscard]] std::int64_t total_ops() const;
  [[nodiscard]] std::int64_t total_weight_count() const;
  /// Total feature-map bytes moved if every layer spills to DDR: each edge
  /// transfers its producer's output once per consumer, plus the outputs of
  /// all sink layers, at `bytes_per_elem` width. On chains this reduces to
  /// the input of every layer + the output of the last.
  [[nodiscard]] std::int64_t unfused_feature_transfer_bytes(
      int bytes_per_elem = 2) const;

  /// Re-runs shape inference along the edges; throws on inconsistency.
  void infer_shapes();

  [[nodiscard]] std::string summary() const;

 private:
  std::string name_ = "net";
  std::vector<Layer> layers_;
};

}  // namespace hetacc::nn
