#pragma once
// Linear network container + builder. The paper's optimizer works on layer
// chains; GoogLeNet-style module graphs are handled by coarsening a module
// into a single pseudo-layer (paper §7.1), which `coarsen` supports.

#include <optional>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace hetacc::nn {

class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Appends a layer. Shapes are inferred immediately so callers can chain
  /// builder calls and read `back().out`.
  Layer& add(Layer layer);

  // Builder helpers -------------------------------------------------------
  Layer& input(Shape s, std::string name = "data");
  Layer& conv(int out_channels, int kernel, int stride, int pad,
              std::string name, bool fused_relu = true);
  Layer& max_pool(int kernel, int stride, std::string name, int pad = 0);
  Layer& avg_pool(int kernel, int stride, std::string name, int pad = 0);
  Layer& lrn(int local_size, float alpha, float beta, std::string name);
  Layer& relu(std::string name);
  Layer& fc(int out_features, std::string name, bool fused_relu = true);
  Layer& softmax(std::string name = "prob");

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] bool empty() const { return layers_.empty(); }
  [[nodiscard]] const Layer& operator[](std::size_t i) const {
    return layers_.at(i);
  }
  [[nodiscard]] Layer& operator[](std::size_t i) { return layers_.at(i); }
  [[nodiscard]] auto begin() const { return layers_.begin(); }
  [[nodiscard]] auto end() const { return layers_.end(); }
  [[nodiscard]] const std::vector<Layer>& layers() const { return layers_; }

  [[nodiscard]] std::optional<std::size_t> find(std::string_view name) const;

  /// Sub-network consisting of layers [first, last] (inclusive), preceded by
  /// a synthetic input layer matching layer `first`'s input shape. This is
  /// how experiment harnesses carve out "the first five convolutional layers
  /// and two pooling layers" of VGG (paper §7.2).
  [[nodiscard]] Network slice(std::size_t first, std::size_t last,
                              std::string name) const;

  /// Network with only the layers the FPGA accelerator processes: the paper
  /// omits trailing FC/softmax layers (§7.3) and folds standalone ReLU into
  /// the preceding convolution (§7.2).
  [[nodiscard]] Network accelerated_portion() const;

  /// Replaces layers [first, last] by a single conv pseudo-layer with the
  /// same input/output shapes and the summed op count — the "treat every
  /// module as a single layer" coarsening of §7.1.
  [[nodiscard]] Network coarsen(std::size_t first, std::size_t last,
                                std::string module_name) const;

  [[nodiscard]] std::int64_t total_ops() const;
  [[nodiscard]] std::int64_t total_weight_count() const;
  /// Total feature-map bytes moved if every layer spills to DDR
  /// (input of every layer + output of the last) at `bytes_per_elem` width.
  [[nodiscard]] std::int64_t unfused_feature_transfer_bytes(
      int bytes_per_elem = 2) const;

  /// Re-runs shape inference from the input layer; throws on inconsistency.
  void infer_shapes();

  [[nodiscard]] std::string summary() const;

 private:
  std::string name_ = "net";
  std::vector<Layer> layers_;
};

}  // namespace hetacc::nn
