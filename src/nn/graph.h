#pragma once
// Series-parallel structure analysis over nn::Network graphs.
//
// The fusion optimizer reasons about contiguous topo-order ranges. On a
// chain every range is fusable; on a DAG a range is fusable only when it is
// single-entry/single-exit (SESE): exactly one external producer feeds it
// (loaded once and broadcast to every arm) and only the last layer is read
// from outside (stored once). `is_sese_range` is that gate.
//
// `sp_decompose` recovers the series-parallel tree of the whole graph:
// series compositions are the sync points the chain DP can cut at, parallel
// compositions are branch arms that must be co-scheduled inside one fusion
// group (they share the group's transfer budget). Chains decompose into a
// series of leaves; a net that is not series-parallel is rejected.

#include <cstddef>
#include <string>
#include <vector>

#include "nn/network.h"

namespace hetacc::nn {

struct SpNode {
  enum class Kind { kLeaf, kSeries, kParallel };
  Kind kind = Kind::kLeaf;
  /// kLeaf: the single layer index. kParallel: the merge layer index.
  std::size_t layer = 0;
  /// kSeries: sequential segments. kParallel: branch arms (each an SpNode).
  std::vector<SpNode> children;
  /// kParallel: number of passthrough arms (direct entry -> merge edges),
  /// e.g. the identity skip of a ResNet block.
  int passthrough_arms = 0;
};

/// Aggregate shape statistics for `hetacc --summary` and reports.
struct GraphShape {
  std::size_t layer_count = 0;
  std::size_t edge_count = 0;
  std::size_t branch_points = 0;  ///< layers with >= 2 consumers
  std::size_t merge_layers = 0;   ///< concat / eltwise-add layers
  int sp_depth = 0;               ///< 1 for a chain, +1 per parallel nesting
};

/// True iff layers [first, last] form a single-entry/single-exit region:
/// at most one distinct producer outside the range feeds it, and no layer in
/// [first, last-1] is consumed by a layer beyond `last`.
[[nodiscard]] bool is_sese_range(const Network& net, std::size_t first,
                                 std::size_t last);

/// Series-parallel decomposition of layers [1, size-1] (the input layer is
/// the source). Throws ValidationError if the graph is not series-parallel.
[[nodiscard]] SpNode sp_decompose(const Network& net);

/// Depth of the SP tree: 1 for chains, 2 for one level of branching, ...
[[nodiscard]] int sp_depth(const SpNode& node);

/// Number of parallel compositions in the tree.
[[nodiscard]] std::size_t sp_parallel_count(const SpNode& node);

/// Shape statistics of the whole net (works on any DAG; sp_depth is 0 when
/// the net is not series-parallel).
[[nodiscard]] GraphShape graph_shape(const Network& net);

/// One-line rendering, e.g.
/// "graph: layers=18 edges=19 branches=1 merges=1 sp_depth=2 chain=no".
[[nodiscard]] std::string graph_shape_line(const Network& net);

}  // namespace hetacc::nn
