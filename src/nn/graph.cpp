#include "nn/graph.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"

namespace hetacc::nn {

bool is_sese_range(const Network& net, std::size_t first, std::size_t last) {
  if (first > last || last >= net.size()) return false;
  // Single entry: at most one distinct external producer.
  std::size_t ext = static_cast<std::size_t>(-1);
  for (std::size_t i = first; i <= last; ++i) {
    for (std::size_t u : net[i].inputs) {
      if (u >= first) continue;
      if (ext != static_cast<std::size_t>(-1) && ext != u) return false;
      ext = u;
    }
  }
  // Single exit: no layer before `last` is read from beyond the range.
  for (std::size_t j = last + 1; j < net.size(); ++j) {
    for (std::size_t u : net[j].inputs) {
      if (u >= first && u < last) return false;
    }
  }
  return true;
}

namespace {

/// Recursive SP decomposition of the layer-index subset S (ascending, a
/// sub-sequence of the net's topo order) whose sole external producer is
/// `entry`. Series cuts are positions no edge jumps over; an uncut segment
/// of >= 2 layers must be a parallel composition whose exit is its last
/// layer and whose arms are the connected components of the interior.
SpNode decompose_set(const Network& net, std::size_t entry,
                     const std::vector<std::size_t>& set) {
  const auto not_sp = [&](std::size_t at) -> ValidationError {
    return ValidationError(
        "network is not series-parallel",
        "near layer '" + net[at].name + "' of net '" + net.name() + "'");
  };
  // Membership + position lookup for this subset.
  std::vector<std::size_t> pos_of(net.size(), static_cast<std::size_t>(-1));
  for (std::size_t k = 0; k < set.size(); ++k) pos_of[set[k]] = k;
  for (std::size_t v : set) {
    for (std::size_t u : net[v].inputs) {
      if (u != entry && pos_of[u] == static_cast<std::size_t>(-1)) {
        throw not_sp(v);  // edge crossing into the region from elsewhere
      }
    }
  }
  // Series cuts: position k is a cut iff every edge into set[k+1..] comes
  // from set[k..] (nothing — including the entry — jumps the cut).
  std::vector<std::size_t> cuts;
  for (std::size_t k = 0; k + 1 < set.size(); ++k) {
    bool cut = true;
    for (std::size_t j = k + 1; j < set.size() && cut; ++j) {
      for (std::size_t u : net[set[j]].inputs) {
        const std::size_t up =
            (u == entry) ? static_cast<std::size_t>(-1) : pos_of[u];
        if (up == static_cast<std::size_t>(-1) || up < k) {
          cut = false;
          break;
        }
      }
    }
    if (cut) cuts.push_back(k);
  }
  if (!cuts.empty()) {
    SpNode series;
    series.kind = SpNode::Kind::kSeries;
    std::size_t seg_entry = entry;
    std::size_t begin = 0;
    cuts.push_back(set.size() - 1);
    for (std::size_t c : cuts) {
      std::vector<std::size_t> seg(set.begin() + begin, set.begin() + c + 1);
      series.children.push_back(decompose_set(net, seg_entry, seg));
      seg_entry = set[c];
      begin = c + 1;
    }
    return series;
  }
  if (set.size() == 1) {
    SpNode leaf;
    leaf.kind = SpNode::Kind::kLeaf;
    leaf.layer = set.front();
    return leaf;
  }
  // Parallel composition: exit is the last layer; arms are the connected
  // components (undirected) of the interior.
  const std::size_t exit = set.back();
  const std::size_t n = set.size() - 1;  // interior size
  std::vector<std::size_t> comp(n);
  for (std::size_t k = 0; k < n; ++k) comp[k] = k;
  const auto root = [&](std::size_t k) {
    while (comp[k] != k) k = comp[k] = comp[comp[k]];
    return k;
  };
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t u : net[set[k]].inputs) {
      if (u == entry) continue;
      const std::size_t up = pos_of[u];
      if (up < n) comp[root(k)] = root(up);
    }
  }
  std::vector<std::vector<std::size_t>> arms;
  std::vector<std::size_t> arm_of(n, static_cast<std::size_t>(-1));
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t r = root(k);
    if (arm_of[r] == static_cast<std::size_t>(-1)) {
      arm_of[r] = arms.size();
      arms.emplace_back();
    }
    arms[arm_of[r]].push_back(set[k]);
  }
  int passthrough = 0;
  for (std::size_t u : net[exit].inputs) {
    if (u == entry) ++passthrough;
  }
  if (arms.size() + static_cast<std::size_t>(passthrough) < 2) {
    throw not_sp(exit);  // no real branching yet no series cut: not SP
  }
  SpNode par;
  par.kind = SpNode::Kind::kParallel;
  par.layer = exit;
  par.passthrough_arms = passthrough;
  for (const auto& arm : arms) {
    par.children.push_back(decompose_set(net, entry, arm));
  }
  return par;
}

void shape_walk(const SpNode& node, GraphShape& shape, int depth) {
  shape.sp_depth = std::max(shape.sp_depth, depth);
  for (const SpNode& c : node.children) {
    shape_walk(c, shape,
               depth + (node.kind == SpNode::Kind::kParallel ? 1 : 0));
  }
}

}  // namespace

SpNode sp_decompose(const Network& net) {
  if (net.empty() || net[0].kind != LayerKind::kInput) {
    throw ValidationError("sp_decompose needs a net with an input layer",
                          "net '" + net.name() + "'");
  }
  if (net.size() == 1) {
    SpNode leaf;
    leaf.kind = SpNode::Kind::kLeaf;
    leaf.layer = 0;
    return leaf;
  }
  std::vector<std::size_t> all;
  all.reserve(net.size() - 1);
  for (std::size_t i = 1; i < net.size(); ++i) all.push_back(i);
  return decompose_set(net, 0, all);
}

int sp_depth(const SpNode& node) {
  switch (node.kind) {
    case SpNode::Kind::kLeaf:
      return 1;
    case SpNode::Kind::kSeries: {
      int d = 1;
      for (const SpNode& c : node.children) d = std::max(d, sp_depth(c));
      return d;
    }
    case SpNode::Kind::kParallel: {
      int d = 1;
      for (const SpNode& c : node.children) d = std::max(d, sp_depth(c));
      return d + 1;
    }
  }
  return 1;
}

std::size_t sp_parallel_count(const SpNode& node) {
  std::size_t n = node.kind == SpNode::Kind::kParallel ? 1 : 0;
  for (const SpNode& c : node.children) n += sp_parallel_count(c);
  return n;
}

GraphShape graph_shape(const Network& net) {
  GraphShape shape;
  shape.layer_count = net.size();
  for (std::size_t i = 0; i < net.size(); ++i) {
    shape.edge_count += net[i].inputs.size();
    if (net[i].is_merge()) ++shape.merge_layers;
    if (net.consumers(i).size() >= 2) ++shape.branch_points;
  }
  try {
    shape.sp_depth = sp_depth(sp_decompose(net));
  } catch (const Error&) {
    shape.sp_depth = 0;  // not series-parallel
  }
  return shape;
}

std::string graph_shape_line(const Network& net) {
  const GraphShape s = graph_shape(net);
  std::ostringstream os;
  os << "graph: layers=" << s.layer_count << " edges=" << s.edge_count
     << " branches=" << s.branch_points << " merges=" << s.merge_layers
     << " sp_depth=" << s.sp_depth
     << " chain=" << (net.is_chain() ? "yes" : "no");
  return os.str();
}

}  // namespace hetacc::nn
