#include "nn/layer.h"

#include <cmath>

namespace hetacc::nn {

std::string_view to_string(LayerKind k) {
  switch (k) {
    case LayerKind::kInput: return "input";
    case LayerKind::kConv: return "conv";
    case LayerKind::kPool: return "pool";
    case LayerKind::kLrn: return "lrn";
    case LayerKind::kRelu: return "relu";
    case LayerKind::kFullyConnected: return "fc";
    case LayerKind::kSoftmax: return "softmax";
    case LayerKind::kEltwiseAdd: return "eltwise";
    case LayerKind::kConcat: return "concat";
  }
  return "?";
}

namespace {
int conv_out_dim(int in, int k, int stride, int pad) {
  // Caffe: floor((in + 2*pad - k) / stride) + 1
  const int span = in + 2 * pad - k;
  if (span < 0) {
    throw std::invalid_argument("kernel larger than padded input");
  }
  return span / stride + 1;
}

int pool_out_dim(int in, int k, int stride, int pad) {
  // Caffe pools round up so no input pixel is dropped.
  const int span = in + 2 * pad - k;
  if (span < 0) {
    throw std::invalid_argument("pool kernel larger than padded input");
  }
  int out = (span + stride - 1) / stride + 1;
  if (pad > 0 && (out - 1) * stride >= in + pad) --out;
  return out;
}
}  // namespace

Shape infer_output_shape(const Layer& layer, const Shape& in) {
  switch (layer.kind) {
    case LayerKind::kInput:
      return std::get<InputParam>(layer.param).shape;
    case LayerKind::kConv: {
      const auto& p = std::get<ConvParam>(layer.param);
      return Shape{p.out_channels, conv_out_dim(in.h, p.kernel, p.stride, p.pad),
                   conv_out_dim(in.w, p.kernel, p.stride, p.pad)};
    }
    case LayerKind::kPool: {
      const auto& p = std::get<PoolParam>(layer.param);
      return Shape{in.c, pool_out_dim(in.h, p.kernel, p.stride, p.pad),
                   pool_out_dim(in.w, p.kernel, p.stride, p.pad)};
    }
    case LayerKind::kLrn:
    case LayerKind::kRelu:
    case LayerKind::kSoftmax:
      return in;
    case LayerKind::kFullyConnected: {
      const auto& p = std::get<FcParam>(layer.param);
      return Shape{p.out_features, 1, 1};
    }
    case LayerKind::kEltwiseAdd:
    case LayerKind::kConcat:
      throw std::invalid_argument("merge layer '" + layer.name +
                                  "' needs the multi-input shape inference");
  }
  throw std::logic_error("unreachable layer kind");
}

Shape infer_output_shape(const Layer& layer, const std::vector<Shape>& ins) {
  if (ins.empty()) {
    throw std::invalid_argument("layer '" + layer.name + "' has no inputs");
  }
  switch (layer.kind) {
    case LayerKind::kEltwiseAdd: {
      if (ins.size() < 2) {
        throw std::invalid_argument("eltwise layer '" + layer.name +
                                    "' needs at least two inputs");
      }
      for (const Shape& s : ins) {
        if (s != ins.front()) {
          throw std::invalid_argument("eltwise layer '" + layer.name +
                                      "' has mismatched input shapes");
        }
      }
      return ins.front();
    }
    case LayerKind::kConcat: {
      if (ins.size() < 2) {
        throw std::invalid_argument("concat layer '" + layer.name +
                                    "' needs at least two inputs");
      }
      Shape out = ins.front();
      for (std::size_t i = 1; i < ins.size(); ++i) {
        if (ins[i].h != out.h || ins[i].w != out.w) {
          throw std::invalid_argument("concat layer '" + layer.name +
                                      "' has mismatched spatial dims");
        }
        out.c += ins[i].c;
      }
      return out;
    }
    default:
      if (ins.size() != 1) {
        throw std::invalid_argument("layer '" + layer.name +
                                    "' takes exactly one input");
      }
      return infer_output_shape(layer, ins.front());
  }
}

std::int64_t Layer::ops() const {
  switch (kind) {
    case LayerKind::kConv: {
      const auto& p = std::get<ConvParam>(param);
      // MAC = 2 ops, per output element per input channel per kernel tap.
      return 2ll * conv_fan_in() * p.kernel * p.kernel * out.elems();
    }
    case LayerKind::kFullyConnected:
      return 2ll * in.elems() * out.elems();
    case LayerKind::kPool: {
      const auto& p = std::get<PoolParam>(param);
      return static_cast<std::int64_t>(p.kernel) * p.kernel * out.elems();
    }
    case LayerKind::kLrn: {
      const auto& p = std::get<LrnParam>(param);
      // square+accumulate over the window, then scale/pow: ~3 ops/elem extra.
      return (2ll * p.local_size + 3) * out.elems();
    }
    case LayerKind::kRelu:
      return out.elems();
    case LayerKind::kEltwiseAdd:
      // (arms - 1) adds per output element.
      return out.elems() *
             static_cast<std::int64_t>(inputs.empty() ? 1 : inputs.size() - 1);
    case LayerKind::kConcat:
      // Pure data movement: one copy per output element.
      return out.elems();
    case LayerKind::kInput:
    case LayerKind::kSoftmax:
      return 0;
  }
  return 0;
}

std::int64_t Layer::mults() const {
  switch (kind) {
    case LayerKind::kConv: {
      const auto& p = std::get<ConvParam>(param);
      return static_cast<std::int64_t>(conv_fan_in()) * p.kernel * p.kernel *
             out.elems();
    }
    case LayerKind::kFullyConnected:
      return in.elems() * out.elems();
    default:
      return 0;
  }
}

std::int64_t Layer::weight_count() const {
  switch (kind) {
    case LayerKind::kConv: {
      const auto& p = std::get<ConvParam>(param);
      return static_cast<std::int64_t>(p.out_channels) * conv_fan_in() *
                 p.kernel * p.kernel +
             p.out_channels;
    }
    case LayerKind::kFullyConnected:
      return in.elems() * out.c + out.c;
    default:
      return 0;
  }
}

int Layer::window() const {
  switch (kind) {
    case LayerKind::kConv: return std::get<ConvParam>(param).kernel;
    case LayerKind::kPool: return std::get<PoolParam>(param).kernel;
    default: return 1;
  }
}

int Layer::stride() const {
  switch (kind) {
    case LayerKind::kConv: return std::get<ConvParam>(param).stride;
    case LayerKind::kPool: return std::get<PoolParam>(param).stride;
    default: return 1;
  }
}

int Layer::padding() const {
  switch (kind) {
    case LayerKind::kConv: return std::get<ConvParam>(param).pad;
    case LayerKind::kPool: return std::get<PoolParam>(param).pad;
    default: return 0;
  }
}

}  // namespace hetacc::nn
