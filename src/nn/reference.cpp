#include "nn/reference.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/arena.h"
#include "kernels/gemm.h"
#include "kernels/parallel.h"

namespace hetacc::nn {

Tensor conv_reference(const Tensor& in, const FilterBank& f,
                      const std::vector<float>& bias, int stride, int pad,
                      bool fused_relu) {
  const Shape is = in.shape();
  if (is.c != f.in_channels()) {
    throw std::invalid_argument("conv_reference: channel mismatch");
  }
  const int k = f.kernel();
  const int oh = (is.h + 2 * pad - k) / stride + 1;
  const int ow = (is.w + 2 * pad - k) / stride + 1;
  Tensor out(f.out_channels(), oh, ow);
  const int cols = oh * ow;
  const int rows = is.c * k * k;
  kernels::ScratchArena& arena = kernels::ScratchArena::tls();
  kernels::ScratchArena::Scope scope(arena);
  float* mat = arena.alloc<float>(static_cast<std::size_t>(rows) * cols);
  kernels::im2col_f32(in.data(), is.c, is.h, is.w, k, stride, pad, oh, ow, mat,
                      /*threads=*/0);
  kernels::gemm_f32(f.out_channels(), cols, rows, f.data(), rows, mat, cols,
                    out.data(), cols, bias.empty() ? nullptr : bias.data(),
                    fused_relu, /*threads=*/0);
  return out;
}

Tensor conv_reference_scalar(const Tensor& in, const FilterBank& f,
                             const std::vector<float>& bias, int stride,
                             int pad, bool fused_relu) {
  const Shape is = in.shape();
  if (is.c != f.in_channels()) {
    throw std::invalid_argument("conv_reference: channel mismatch");
  }
  const int k = f.kernel();
  const int oh = (is.h + 2 * pad - k) / stride + 1;
  const int ow = (is.w + 2 * pad - k) / stride + 1;
  Tensor out(f.out_channels(), oh, ow);
  for (int n = 0; n < f.out_channels(); ++n) {
    const float b = bias.empty() ? 0.0f : bias[n];
    for (int i = 0; i < oh; ++i) {
      for (int j = 0; j < ow; ++j) {
        float acc = b;
        for (int m = 0; m < is.c; ++m) {
          for (int u = 0; u < k; ++u) {
            const int h = i * stride + u - pad;
            if (h < 0 || h >= is.h) continue;
            for (int v = 0; v < k; ++v) {
              const int w = j * stride + v - pad;
              if (w < 0 || w >= is.w) continue;
              acc += in.at(m, h, w) * f.at(n, m, u, v);
            }
          }
        }
        out.at(n, i, j) = fused_relu ? std::max(acc, 0.0f) : acc;
      }
    }
  }
  return out;
}

Tensor pool_reference(const Tensor& in, PoolMethod method, int kernel,
                      int stride, int pad) {
  const Shape is = in.shape();
  Layer tmp{LayerKind::kPool, "tmp", PoolParam{method, kernel, stride, pad},
            is, {}};
  const Shape os = infer_output_shape(tmp, is);
  Tensor out(os.c, os.h, os.w);
  for (int c = 0; c < is.c; ++c) {
    for (int i = 0; i < os.h; ++i) {
      for (int j = 0; j < os.w; ++j) {
        float best = -std::numeric_limits<float>::infinity();
        float sum = 0.0f;
        int count = 0;
        for (int u = 0; u < kernel; ++u) {
          const int h = i * stride + u - pad;
          if (h < 0 || h >= is.h) continue;
          for (int v = 0; v < kernel; ++v) {
            const int w = j * stride + v - pad;
            if (w < 0 || w >= is.w) continue;
            const float x = in.at(c, h, w);
            best = std::max(best, x);
            sum += x;
            ++count;
          }
        }
        out.at(c, i, j) = (method == PoolMethod::kMax)
                              ? best
                              : (count ? sum / static_cast<float>(count) : 0.0f);
      }
    }
  }
  return out;
}

Tensor lrn_reference(const Tensor& in, const LrnParam& p) {
  const Shape s = in.shape();
  Tensor out(s.c, s.h, s.w);
  const int half = p.local_size / 2;
  for (int c = 0; c < s.c; ++c) {
    const int lo = std::max(0, c - half);
    const int hi = std::min(s.c - 1, c + half);
    for (int h = 0; h < s.h; ++h) {
      for (int w = 0; w < s.w; ++w) {
        float ss = 0.0f;
        for (int cc = lo; cc <= hi; ++cc) {
          const float x = in.at(cc, h, w);
          ss += x * x;
        }
        const float denom =
            std::pow(p.k + p.alpha / static_cast<float>(p.local_size) * ss,
                     p.beta);
        out.at(c, h, w) = in.at(c, h, w) / denom;
      }
    }
  }
  return out;
}

Tensor relu_reference(const Tensor& in) {
  Tensor out = in;
  for (auto& x : out.vec()) x = std::max(x, 0.0f);
  return out;
}

Tensor fc_reference(const Tensor& in, const FcWeights& w, bool fused_relu) {
  const auto in_elems = static_cast<std::size_t>(in.size());
  const auto out_features = w.bias.size();
  if (w.matrix.size() != out_features * in_elems) {
    throw std::invalid_argument("fc_reference: weight size mismatch");
  }
  Tensor out(static_cast<int>(out_features), 1, 1);
  // Parallel across output features in chunked claims (one feature is a
  // short dot product, so per-index cursor traffic would dominate); each
  // feature's accumulation chain is untouched, so results are bit-identical
  // for any thread count and any grain.
  kernels::parallel_for(out_features, 8, 0, [&](std::size_t o) {
    float acc = w.bias[o];
    const float* row = w.matrix.data() + o * in_elems;
    const float* x = in.data();
    for (std::size_t i = 0; i < in_elems; ++i) acc += row[i] * x[i];
    out.data()[o] = fused_relu ? std::max(acc, 0.0f) : acc;
  });
  return out;
}

Tensor softmax_reference(const Tensor& in) {
  Tensor out = in;
  float mx = -std::numeric_limits<float>::infinity();
  for (float x : in.vec()) mx = std::max(mx, x);
  float sum = 0.0f;
  for (auto& x : out.vec()) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (auto& x : out.vec()) x /= sum;
  return out;
}

Tensor concat_reference(const std::vector<const Tensor*>& ins) {
  if (ins.size() < 2) {
    throw std::invalid_argument("concat_reference: needs >= 2 inputs");
  }
  const Shape first = ins.front()->shape();
  int channels = 0;
  for (const Tensor* t : ins) {
    const Shape s = t->shape();
    if (s.h != first.h || s.w != first.w) {
      throw std::invalid_argument("concat_reference: spatial dim mismatch");
    }
    channels += s.c;
  }
  Tensor out(channels, first.h, first.w);
  float* dst = out.data();
  for (const Tensor* t : ins) {
    std::copy(t->data(), t->data() + t->size(), dst);
    dst += t->size();
  }
  return out;
}

Tensor eltwise_add_reference(const std::vector<const Tensor*>& ins) {
  if (ins.size() < 2) {
    throw std::invalid_argument("eltwise_add_reference: needs >= 2 inputs");
  }
  Tensor out = *ins.front();
  for (std::size_t k = 1; k < ins.size(); ++k) {
    if (ins[k]->shape() != out.shape()) {
      throw std::invalid_argument("eltwise_add_reference: shape mismatch");
    }
    const float* src = ins[k]->data();
    float* dst = out.data();
    for (std::size_t i = 0; i < static_cast<std::size_t>(out.size()); ++i) {
      dst[i] += src[i];
    }
  }
  return out;
}

Tensor run_layer(const Layer& layer, std::size_t layer_index,
                 const WeightStore& ws, const Tensor& input) {
  switch (layer.kind) {
    case LayerKind::kInput:
      return input;
    case LayerKind::kConv: {
      const auto& p = layer.conv();
      const auto& w = ws.conv(layer_index);
      return conv_reference(input, w.filters, w.bias, p.stride, p.pad,
                            p.fused_relu);
    }
    case LayerKind::kPool: {
      const auto& p = layer.pool();
      return pool_reference(input, p.method, p.kernel, p.stride, p.pad);
    }
    case LayerKind::kLrn:
      return lrn_reference(input, layer.lrn());
    case LayerKind::kRelu:
      return relu_reference(input);
    case LayerKind::kFullyConnected:
      return fc_reference(input, ws.fc(layer_index), layer.fc().fused_relu);
    case LayerKind::kSoftmax:
      return softmax_reference(input);
    case LayerKind::kEltwiseAdd:
    case LayerKind::kConcat:
      throw std::invalid_argument("run_layer: merge layer '" + layer.name +
                                  "' needs the multi-input overload");
  }
  throw std::logic_error("run_layer: unknown kind");
}

Tensor run_layer(const Layer& layer, std::size_t layer_index,
                 const WeightStore& ws,
                 const std::vector<const Tensor*>& inputs) {
  switch (layer.kind) {
    case LayerKind::kConcat:
      return concat_reference(inputs);
    case LayerKind::kEltwiseAdd:
      return eltwise_add_reference(inputs);
    default:
      if (inputs.size() != 1) {
        throw std::invalid_argument("run_layer: layer '" + layer.name +
                                    "' takes exactly one input");
      }
      return run_layer(layer, layer_index, ws, *inputs.front());
  }
}

Tensor run_network(const Network& net, const WeightStore& ws,
                   const Tensor& input) {
  if (net.is_chain()) {
    Tensor cur = input;
    for (std::size_t i = 0; i < net.size(); ++i) {
      cur = run_layer(net[i], i, ws, cur);
    }
    return cur;
  }
  std::vector<Tensor> outs = run_network_all(net, ws, input);
  return outs.empty() ? input : std::move(outs.back());
}

std::vector<Tensor> run_network_all(const Network& net, const WeightStore& ws,
                                    const Tensor& input) {
  std::vector<Tensor> outs;
  outs.reserve(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    const Layer& l = net[i];
    if (i == 0) {
      outs.push_back(run_layer(l, i, ws, input));
      continue;
    }
    std::vector<const Tensor*> ins;
    ins.reserve(l.inputs.size());
    for (std::size_t u : l.inputs) ins.push_back(&outs[u]);
    outs.push_back(run_layer(l, i, ws, ins));
  }
  return outs;
}

}  // namespace hetacc::nn
