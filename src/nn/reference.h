#pragma once
// Reference (golden) executor: straightforward float implementations of all
// layer types. Every accelerated path in the repository is validated against
// this executor.

#include "nn/network.h"
#include "nn/tensor.h"
#include "nn/weights.h"

namespace hetacc::nn {

/// Runs a single layer. `layer_index` selects the weights in `ws`.
[[nodiscard]] Tensor run_layer(const Layer& layer, std::size_t layer_index,
                               const WeightStore& ws, const Tensor& input);

/// Multi-input form: runs a layer on its producer outputs in edge order.
/// Required for the merge kinds (concat / eltwise-add); single-input layers
/// delegate to the overload above.
[[nodiscard]] Tensor run_layer(const Layer& layer, std::size_t layer_index,
                               const WeightStore& ws,
                               const std::vector<const Tensor*>& inputs);

/// Runs the whole network and returns the final output.
[[nodiscard]] Tensor run_network(const Network& net, const WeightStore& ws,
                                 const Tensor& input);

/// Runs the network and returns the output of every layer (index-aligned
/// with the network; entry 0 is the input tensor itself).
[[nodiscard]] std::vector<Tensor> run_network_all(const Network& net,
                                                  const WeightStore& ws,
                                                  const Tensor& input);

// Individual kernels, exposed for targeted tests -------------------------
// conv_reference runs on the blocked im2col+GEMM kernel layer; the retained
// seed loop nest (conv_reference_scalar) stays as the golden baseline for
// equivalence tests and benches.
[[nodiscard]] Tensor conv_reference(const Tensor& in, const FilterBank& f,
                                    const std::vector<float>& bias, int stride,
                                    int pad, bool fused_relu);
[[nodiscard]] Tensor conv_reference_scalar(const Tensor& in,
                                           const FilterBank& f,
                                           const std::vector<float>& bias,
                                           int stride, int pad,
                                           bool fused_relu);
[[nodiscard]] Tensor pool_reference(const Tensor& in, PoolMethod method,
                                    int kernel, int stride, int pad);
[[nodiscard]] Tensor lrn_reference(const Tensor& in, const LrnParam& p);
[[nodiscard]] Tensor relu_reference(const Tensor& in);
[[nodiscard]] Tensor fc_reference(const Tensor& in, const FcWeights& w,
                                  bool fused_relu);
[[nodiscard]] Tensor softmax_reference(const Tensor& in);
[[nodiscard]] Tensor concat_reference(const std::vector<const Tensor*>& ins);
[[nodiscard]] Tensor eltwise_add_reference(
    const std::vector<const Tensor*>& ins);

}  // namespace hetacc::nn
