#include "nn/weights.h"

#include <stdexcept>

namespace hetacc::nn {

namespace {
WeightStore make(const Network& net, std::uint32_t seed, bool with_bias) {
  WeightStore ws;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const Layer& l = net[i];
    const std::uint32_t layer_seed =
        seed * 2654435761u + static_cast<std::uint32_t>(i) * 40503u + 1u;
    if (l.kind == LayerKind::kConv) {
      const auto& p = l.conv();
      ConvWeights w{FilterBank(p.out_channels, l.in.c, p.kernel),
                    std::vector<float>(p.out_channels, 0.0f)};
      fill_deterministic(w.filters, layer_seed);
      if (with_bias) {
        fill_deterministic(w.bias, layer_seed ^ 0x5a5a5a5au);
        for (auto& b : w.bias) b *= 0.1f;
      }
      ws.set_conv(i, std::move(w));
    } else if (l.kind == LayerKind::kFullyConnected) {
      FcWeights w;
      w.matrix.resize(static_cast<std::size_t>(l.out.c) * l.in.elems());
      w.bias.assign(l.out.c, 0.0f);
      fill_deterministic(w.matrix, layer_seed);
      // Scale down so wide FC reductions stay in range.
      const float scale = 1.0f / static_cast<float>(std::max<std::int64_t>(
                                     1, l.in.elems() / 64));
      for (auto& x : w.matrix) x *= scale;
      if (with_bias) fill_deterministic(w.bias, layer_seed ^ 0x5a5a5a5au);
      ws.set_fc(i, std::move(w));
    }
  }
  return ws;
}
}  // namespace

WeightStore WeightStore::deterministic(const Network& net,
                                       std::uint32_t seed) {
  return make(net, seed, /*with_bias=*/true);
}

WeightStore WeightStore::deterministic_no_bias(const Network& net,
                                               std::uint32_t seed) {
  return make(net, seed, /*with_bias=*/false);
}

const ConvWeights& WeightStore::conv(std::size_t layer) const {
  auto it = conv_.find(layer);
  if (it == conv_.end()) {
    throw std::out_of_range("no conv weights for layer " +
                            std::to_string(layer));
  }
  return it->second;
}

ConvWeights& WeightStore::conv(std::size_t layer) {
  auto it = conv_.find(layer);
  if (it == conv_.end()) {
    throw std::out_of_range("no conv weights for layer " +
                            std::to_string(layer));
  }
  return it->second;
}

const FcWeights& WeightStore::fc(std::size_t layer) const {
  auto it = fc_.find(layer);
  if (it == fc_.end()) {
    throw std::out_of_range("no fc weights for layer " +
                            std::to_string(layer));
  }
  return it->second;
}

std::int64_t WeightStore::bytes(int bytes_per_elem) const {
  std::int64_t n = 0;
  for (const auto& [idx, w] : conv_) {
    n += (w.filters.size() + static_cast<std::int64_t>(w.bias.size())) *
         bytes_per_elem;
  }
  for (const auto& [idx, w] : fc_) {
    n += static_cast<std::int64_t>(w.matrix.size() + w.bias.size()) *
         bytes_per_elem;
  }
  return n;
}

}  // namespace hetacc::nn
