#pragma once
// Built-in network definitions used throughout the evaluation: AlexNet and
// VGG (paper §7), plus small synthetic networks for tests.

#include "nn/network.h"

namespace hetacc::nn {

/// AlexNet (Krizhevsky et al., NIPS'12), Caffe single-tower variant:
/// 5 conv (with ReLU), 3 max-pool, 2 LRN, 3 FC, softmax. 227x227x3 input.
[[nodiscard]] Network alexnet();

/// VGGNet-E (VGG-19, Simonyan & Zisserman): 16 conv, 5 max-pool, 3 FC,
/// softmax. 224x224x3 input. This is the network of paper §7.2.
[[nodiscard]] Network vgg_e();

/// VGG-16 (configuration D), used for extension experiments.
[[nodiscard]] Network vgg16();

/// The slice the paper fuses in §7.2: conv1_1..conv2_2 + pool1 + pool2
/// (first five convolutional layers and two pooling layers of VGG-E).
[[nodiscard]] Network vgg_e_head();

/// AlexNet minus the FC stack, ReLU folded — the §7.3 workload.
[[nodiscard]] Network alexnet_accel();

/// Small 3-conv chain on a tiny image; fast enough for exhaustive-search
/// cross-checks of the optimizer.
[[nodiscard]] Network tiny_net(int channels = 8, int spatial = 16);

/// Chain of `depth` 3x3 stride-1 conv layers, all `channels` wide — handy
/// for property tests over fusion-group depth.
[[nodiscard]] Network conv_chain(int depth, int channels, int spatial);

/// Network-in-Network (Lin et al.): conv stacks with 1x1 "mlpconv" layers
/// and a global average pool head — exercises 1x1 convolutions, which are
/// conventional-only in the framework (Winograd needs r >= 2).
[[nodiscard]] Network nin();

/// Inception-style branchy network: conv stem, one GoogLeNet-like module
/// (1x1 / 3x3-reduce+3x3 / 5x5-reduce+5x5 / pool+proj arms joined by a
/// channel concat), pooling and a conv tail before the FC head. The module
/// is exactly 8 layers so the default max_group_layers covers it — the
/// smallest real exercise of the SP-DAG fusion DP's co-scheduled branch
/// groups. 64x64x3 input.
[[nodiscard]] Network inception_mini();

/// ResNet-style skip network: conv stem, two residual blocks
/// (conv+ReLU, conv, eltwise-add with the block input, ReLU), average-pool
/// and FC head. Exercises eltwise-add merges and skip edges that make
/// series cuts illegal across a block. 56x56x3 input.
[[nodiscard]] Network resnet_mini();

/// A GoogLeNet-like modular network: conv stem, then `modules` blocks of
/// (3x3 conv, 3x3 conv) pairs with pooling between stages. §7.1 suggests
/// treating every module as a single layer; `coarsen_modules` applies
/// Network::coarsen to each block, producing the coarse chain the optimizer
/// should run on for very deep structured networks.
[[nodiscard]] Network modular_net(int modules = 4);
[[nodiscard]] Network coarsen_modules(const Network& net);

}  // namespace hetacc::nn
