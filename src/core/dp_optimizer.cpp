#include "core/dp_optimizer.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <limits>
#include <thread>

#include "cost/group_timing.h"
#include "nn/graph.h"

namespace hetacc::core {

namespace {
constexpr long long kInf = std::numeric_limits<long long>::max() / 4;

long long to_units(long long bytes, long long unit) {
  return (bytes + unit - 1) / unit;
}
}  // namespace

FusionTable::FusionTable(const nn::Network& net,
                         const fpga::EngineModel& model,
                         const BnbOptions& opt, int threads) {
  if (net.empty()) throw std::invalid_argument("FusionTable: empty network");
  offset_ = (net[0].kind == nn::LayerKind::kInput) ? 1 : 0;
  count_ = net.size() - offset_;
  if (count_ == 0) throw std::invalid_argument("FusionTable: no layers");
  table_.resize(count_ * count_);
  min_t_.resize(count_ * count_, 0);

  // Enumerate the work list up front. Every (i, j) range is an independent
  // Algorithm 2 search writing a distinct preallocated slot, so workers
  // share nothing mutable but the claim cursor (and the engine model's
  // internal memo, which is thread-safe).
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  for (std::size_t i = 0; i < count_; ++i) {
    for (std::size_t j = i; j < count_ && j - i < opt.max_group_layers; ++j) {
      cells.emplace_back(i, j);
    }
  }
  ranges_ = static_cast<long long>(cells.size());

  // Returns the BnB nodes visited; the caller owns the accumulation so the
  // serial and parallel paths sum the same (commutative) per-cell counts.
  auto evaluate = [&](std::size_t ci) -> long long {
    const auto [i, j] = cells[ci];
    // Only single-entry/single-exit ranges can fuse: every branch arm of a
    // parallel composition must be co-scheduled inside one group (the arms
    // share the group's single external input), so ranges that cut through
    // a module are marked infeasible without running the BnB. On chains
    // every range passes, keeping the table identical to the chain DP's.
    if (!nn::is_sese_range(net, net_index(i), net_index(j))) {
      table_[cell(i, j)] = std::nullopt;
      min_t_[cell(i, j)] = 0;
      return 0;
    }
    auto r = fuse_group(net, net_index(i), net_index(j), model, opt);
    const long long visited = r ? r->nodes_visited : 0;
    min_t_[cell(i, j)] = cost::min_transfer_bytes(
        net, net_index(i), net_index(j), model.device().data_bytes);
    table_[cell(i, j)] = std::move(r);
    return visited;
  };

  std::size_t nthreads = threads <= 0
      ? std::max(1u, std::thread::hardware_concurrency())
      : static_cast<std::size_t>(threads);
  nthreads = std::min(nthreads, cells.size());

  if (nthreads <= 1) {
    for (std::size_t ci = 0; ci < cells.size(); ++ci) nodes_ += evaluate(ci);
    return;
  }

  // Warm-up phase: price each distinct layer once, split across workers.
  // Every cell needs the same few per-layer candidate ladders; without this
  // phase the workers race to fill the model's memo and duplicate exactly
  // that work, which is the dominant cost of small tables. The barrier keeps
  // a fast worker from entering the cell loop while a ladder it needs is
  // still being priced (it would recompute it — correct, but wasted).
  // Pricing is pure per layer, so this phase cannot change any result.
  std::atomic<std::size_t> layer_cursor{0};
  std::atomic<std::size_t> cursor{0};
  std::barrier warm(static_cast<std::ptrdiff_t>(nthreads));
  std::vector<long long> node_counts(nthreads, 0);
  std::vector<std::exception_ptr> errors(nthreads);
  std::vector<std::thread> pool;
  pool.reserve(nthreads);
  for (std::size_t w = 0; w < nthreads; ++w) {
    pool.emplace_back([&, w] {
      long long local_nodes = 0;
      bool past_barrier = false;
      try {
        for (std::size_t li = layer_cursor.fetch_add(1); li < count_;
             li = layer_cursor.fetch_add(1)) {
          (void)model.implementations(net[net_index(li)]);
        }
        warm.arrive_and_wait();
        past_barrier = true;
        for (std::size_t ci = cursor.fetch_add(1); ci < cells.size();
             ci = cursor.fetch_add(1)) {
          local_nodes += evaluate(ci);
        }
      } catch (...) {
        errors[w] = std::current_exception();
        if (!past_barrier) warm.arrive_and_drop();
      }
      node_counts[w] = local_nodes;
    });
  }
  for (auto& t : pool) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  for (const long long c : node_counts) nodes_ += c;
}

std::size_t FusionTable::cell(std::size_t i, std::size_t j) const {
  if (i > j || j >= count_) throw std::out_of_range("FusionTable::cell");
  return i * count_ + j;
}

bool FusionTable::feasible(std::size_t i, std::size_t j) const {
  return table_[cell(i, j)].has_value();
}

long long FusionTable::latency(std::size_t i, std::size_t j) const {
  const auto& r = table_[cell(i, j)];
  return r ? r->group.timing.latency_cycles : kInf;
}

const FusionGroup& FusionTable::group(std::size_t i, std::size_t j) const {
  const auto& r = table_[cell(i, j)];
  if (!r) throw std::logic_error("FusionTable::group on infeasible range");
  return r->group;
}

long long FusionTable::min_transfer(std::size_t i, std::size_t j) const {
  return min_t_[cell(i, j)];
}

namespace {

/// Names the binding constraint of an infeasible run. Every layer that fits
/// on the device alone admits the all-singleton partition, so if no layer is
/// individually infeasible the transfer budget must be what bound — report
/// it against the minimal transfer any partition can achieve (a small DP
/// over the already-built fusion table).
std::string diagnose_infeasible(const nn::Network& net, const FusionTable& ft,
                                const OptimizerOptions& opt) {
  const std::size_t n = ft.count();
  if (n == 0) return "network has no optimizable layers";
  for (std::size_t k = 0; k < n; ++k) {
    if (!ft.feasible(k, k)) {
      const nn::Layer& l = net[ft.net_index(k)];
      if (l.inputs.size() > 1) {
        return "merge layer '" + l.name +
               "' must be fused with its branch arms, but no feasible "
               "single-entry/single-exit group covers the module (raise "
               "max_group_layers or the resource/transfer budgets)";
      }
      return "layer '" + l.name +
             "' has no feasible engine implementation under the device "
             "resource budget";
    }
  }
  std::vector<long long> best(n + 1, kInf);
  best[0] = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (best[i] >= kInf || !ft.feasible(i, j - 1)) continue;
      best[j] = std::min(best[j], best[i] + ft.min_transfer(i, j - 1));
    }
  }
  return "transfer budget " + std::to_string(opt.transfer_budget_bytes) +
         " bytes is below the minimal achievable feature-map transfer (" +
         std::to_string(best[n]) + " bytes)";
}

OptimizeResult assemble(const nn::Network& net,
                        const fpga::EngineModel& model,
                        const OptimizerOptions& opt, const FusionTable& ft,
                        std::vector<std::pair<std::size_t, std::size_t>> cuts,
                        std::chrono::steady_clock::time_point t0) {
  OptimizeResult out;
  out.fusion_ranges_evaluated = ft.ranges_evaluated();
  out.bnb_nodes_visited = ft.nodes_visited();
  if (cuts.empty()) {
    out.infeasible_reason = diagnose_infeasible(net, ft, opt);
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return out;
  }
  std::sort(cuts.begin(), cuts.end());
  for (const auto& [i, j] : cuts) out.strategy.groups.push_back(ft.group(i, j));
  out.feasible = true;
  if (opt.balance) balance_strategy(out.strategy, net, model);
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace

OptimizeResult optimize(const nn::Network& net, const fpga::EngineModel& model,
                        const OptimizerOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  const FusionTable ft(net, model, opt.bnb, opt.threads);
  const std::size_t n = ft.count();
  const long long unit = std::max<long long>(1, opt.transfer_unit_bytes);
  // Budget rounds down, per-group needs round up: the discretization can
  // only make the solver more conservative, never budget-violating.
  const long long budget = opt.transfer_budget_bytes / unit;

  // L[j][t]: best latency covering optimizable layers [0, j) using at most
  // t budget units. Groups are intervals, so DP over the prefix boundary.
  const std::size_t tdim = static_cast<std::size_t>(std::max<long long>(budget, 0)) + 1;
  std::vector<std::vector<long long>> L(n + 1,
                                        std::vector<long long>(tdim, kInf));
  std::vector<std::vector<std::pair<std::size_t, long long>>> mark(
      n + 1, std::vector<std::pair<std::size_t, long long>>(
                 tdim, {SIZE_MAX, -1}));
  for (std::size_t t = 0; t < tdim; ++t) L[0][t] = 0;

  for (std::size_t j = 1; j <= n; ++j) {
    for (std::size_t i = 0; i < j; ++i) {  // group = layers [i, j-1]
      if (!ft.feasible(i, j - 1)) continue;
      const long long need = to_units(ft.min_transfer(i, j - 1), unit);
      const long long lat = ft.latency(i, j - 1);
      for (long long t = need; t < static_cast<long long>(tdim); ++t) {
        const long long prev = L[i][static_cast<std::size_t>(t - need)];
        if (prev >= kInf) continue;
        if (prev + lat < L[j][static_cast<std::size_t>(t)]) {
          L[j][static_cast<std::size_t>(t)] = prev + lat;
          mark[j][static_cast<std::size_t>(t)] = {i, need};
        }
      }
    }
  }

  std::vector<std::pair<std::size_t, std::size_t>> cuts;
  if (budget >= 0 && L[n][tdim - 1] < kInf) {
    std::size_t j = n;
    long long t = budget;
    while (j > 0) {
      const auto [i, need] = mark[j][static_cast<std::size_t>(t)];
      if (i == SIZE_MAX) { cuts.clear(); break; }
      cuts.emplace_back(i, j - 1);
      t -= need;
      j = i;
    }
  }
  return assemble(net, model, opt, ft, std::move(cuts), t0);
}

OptimizeResult optimize_interval(const nn::Network& net,
                                 const fpga::EngineModel& model,
                                 const OptimizerOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  const FusionTable ft(net, model, opt.bnb, opt.threads);
  const std::size_t n = ft.count();
  const long long unit = std::max<long long>(1, opt.transfer_unit_bytes);
  const long long T = opt.transfer_budget_bytes / unit;  // floor, see optimize()
  if (T <= 0) {
    return assemble(net, model, opt, ft, {}, t0);
  }
  // Index t means "t + 1 budget units available", so the final answer at
  // t = T - 1 corresponds to the full budget of T units (the paper reads
  // L[0][N-1][T-1] the same way).
  const std::size_t tdim = static_cast<std::size_t>(T);

  // L[i][j][t], k_mark, t_mark — exactly the paper's Algorithm 1, with t
  // interpreted as "strictly fewer than t+1 units available" as in the
  // paper's L[0][N-1][T-1] final read-out.
  auto idx = [&](std::size_t i, std::size_t j, std::size_t t) {
    return (i * n + j) * tdim + t;
  };
  std::vector<long long> L(n * n * tdim, kInf);
  std::vector<std::size_t> k_mark(n * n * tdim, SIZE_MAX);
  std::vector<long long> t_mark(n * n * tdim, -1);

  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t ii = j + 1; ii-- > 0;) {
      const std::size_t i = ii;
      const long long min_t_ij = to_units(ft.min_transfer(i, j), unit);
      for (std::size_t t = 0; t < tdim; ++t) {
        if (static_cast<long long>(t) + 1 < min_t_ij) {
          continue;  // L stays infinite (Alg. 1 lines 4-5)
        }
        long long best = ft.feasible(i, j) ? ft.latency(i, j) : kInf;
        std::size_t kf = j;
        long long tf = static_cast<long long>(t);
        for (std::size_t k = i; k < j; ++k) {  // Alg. 1 line 10
          const long long lhs_need = to_units(ft.min_transfer(i, k), unit);
          const long long rhs_need = to_units(ft.min_transfer(k + 1, j), unit);
          if (static_cast<long long>(t) + 1 < lhs_need + rhs_need) {
            continue;  // Alg. 1 lines 11-12
          }
          for (std::size_t x = 0; x < t; ++x) {  // Alg. 1 line 13
            const long long a = L[idx(i, k, x)];
            if (a >= kInf) continue;
            const long long b = L[idx(k + 1, j, t - 1 - x)];
            if (b >= kInf) continue;
            if (a + b < best) {
              best = a + b;
              kf = k;
              tf = static_cast<long long>(x);
            }
          }
        }
        L[idx(i, j, t)] = best;
        k_mark[idx(i, j, t)] = kf;
        t_mark[idx(i, j, t)] = tf;
      }
    }
  }

  // Reconstruct the fused structure from k_mark / t_mark (Alg. 1 line 22).
  std::vector<std::pair<std::size_t, std::size_t>> cuts;
  if (L[idx(0, n - 1, tdim - 1)] < kInf) {
    struct Frame { std::size_t i, j, t; };
    std::vector<Frame> stack{{0, n - 1, tdim - 1}};
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      const std::size_t k = k_mark[idx(f.i, f.j, f.t)];
      if (k == f.j) {
        cuts.emplace_back(f.i, f.j);
      } else {
        const auto x = static_cast<std::size_t>(t_mark[idx(f.i, f.j, f.t)]);
        stack.push_back({f.i, k, x});
        stack.push_back({k + 1, f.j, f.t - 1 - x});
      }
    }
  }
  return assemble(net, model, opt, ft, std::move(cuts), t0);
}

void balance_strategy(Strategy& s, const nn::Network& net,
                      const fpga::EngineModel& model) {
  for (auto& g : s.groups) {
    const long long stage = g.timing.compute_cycles;
    fpga::ResourceVector others;  // resources of all layers but the current
    for (const auto& ipl : g.impls) others += ipl.res;

    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const nn::Layer& layer = net[g.first + k];
      others = others - g.impls[k].res;
      const auto buckets = layer_candidate_impls(layer, model);
      const fpga::Implementation* best = &g.impls[k];
      auto cost = [](const fpga::ResourceVector& r) {
        // Lexicographic-ish scalarization: DSPs are the scarce resource the
        // paper reallocates; BRAM next; logic last.
        return static_cast<double>(r.dsp) * 1e6 +
               static_cast<double>(r.bram18k) * 1e3 +
               static_cast<double>(r.lut) * 1e-2 +
               static_cast<double>(r.ff) * 1e-3;
      };
      for (const auto& bucket : buckets) {
        for (const auto& ipl : bucket) {
          if (ipl.compute_cycles > stage) break;  // ascending within bucket
          if (ipl.fill_cycles > g.impls[k].fill_cycles) continue;
          if (!(others + ipl.res).fits_in(model.device().capacity)) continue;
          if (cost(ipl.res) < cost(best->res)) best = &ipl;
        }
      }
      if (best != &g.impls[k]) g.impls[k] = *best;
      others += g.impls[k].res;
    }
    g.timing = evaluate_group_timing(net, g.first, g.last, g.impls,
                                     model.device());
  }
}

}  // namespace hetacc::core
