#include "core/strategy.h"

#include <algorithm>
#include <sstream>
#include <type_traits>

namespace hetacc::core {

// core::GroupTiming must stay the cost layer's type, not a lookalike: every
// optimizer prediction is produced and consumed through cost::.
static_assert(std::is_same_v<GroupTiming, cost::GroupTiming>);

fpga::ResourceVector FusionGroup::resources() const {
  return cost::aggregate_resources(impls);
}

cost::StrategyTotals Strategy::totals() const {
  cost::StrategyTotals t;
  for (const auto& g : groups) t.add(g.timing);
  return t;
}

long long Strategy::latency_cycles() const { return totals().latency_cycles; }

long long Strategy::pipelined_latency_cycles() const {
  return totals().pipelined_latency_cycles();
}

long long Strategy::transfer_bytes() const { return totals().transfer_bytes; }

fpga::ResourceVector Strategy::peak_resources() const {
  fpga::ResourceVector peak;
  for (const auto& g : groups) {
    const auto r = g.resources();
    peak.bram18k = std::max(peak.bram18k, r.bram18k);
    peak.dsp = std::max(peak.dsp, r.dsp);
    peak.ff = std::max(peak.ff, r.ff);
    peak.lut = std::max(peak.lut, r.lut);
  }
  return peak;
}

long long Strategy::total_mults() const {
  long long total = 0;
  for (const auto& g : groups) {
    for (const auto& ipl : g.impls) total += ipl.mults_performed;
  }
  return total;
}

double Strategy::effective_gops(const nn::Network& net,
                                double frequency_hz) const {
  return cost::effective_gops(net.total_ops(), latency_cycles(), frequency_hz);
}

std::string Strategy::describe(const nn::Network& net) const {
  std::ostringstream os;
  os << "strategy: " << groups.size() << " fusion group(s), latency "
     << latency_cycles() << " cycles, feature-map transfer "
     << static_cast<double>(transfer_bytes()) / 1024.0 / 1024.0 << " MB\n";
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const auto& g = groups[gi];
    os << "  group " << gi << " = layers [" << g.first << ", " << g.last
       << "], latency " << g.timing.latency_cycles << " cycles, transfer "
       << g.timing.transfer_bytes / 1024 << " KB\n";
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const auto& ipl = g.impls[k];
      const nn::Layer& l = net[g.first + k];
      os << "    " << l.name << ": " << fpga::algo_label(ipl.cfg)
         << " p=" << ipl.cfg.parallelism(l.window())
         << " dsp=" << ipl.res.dsp << " bram=" << ipl.res.bram18k
         << " cycles=" << ipl.compute_cycles << "\n";
    }
  }
  return os.str();
}

GroupTiming evaluate_group_timing(
    const nn::Network& net, std::size_t first, std::size_t last,
    const std::vector<fpga::Implementation>& impls, const fpga::Device& dev) {
  return cost::evaluate_group_timing(net, first, last, impls, dev);
}

long long min_transfer_bytes(const nn::Network& net, std::size_t first,
                             std::size_t last, int bytes_per_elem) {
  return cost::min_transfer_bytes(net, first, last, bytes_per_elem);
}

}  // namespace hetacc::core
