#include "core/strategy.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hetacc::core {

fpga::ResourceVector FusionGroup::resources() const {
  fpga::ResourceVector sum;
  for (const auto& ipl : impls) sum += ipl.res;
  return sum;
}

long long Strategy::latency_cycles() const {
  long long total = 0;
  for (const auto& g : groups) total += g.timing.latency_cycles;
  return total;
}

long long Strategy::pipelined_latency_cycles() const {
  long long compute = 0, transfer = 0;
  for (const auto& g : groups) {
    compute += g.timing.compute_cycles + g.timing.fill_cycles;
    transfer += g.timing.transfer_cycles;
  }
  return std::max(compute, transfer);
}

long long Strategy::transfer_bytes() const {
  long long total = 0;
  for (const auto& g : groups) total += g.timing.transfer_bytes;
  return total;
}

fpga::ResourceVector Strategy::peak_resources() const {
  fpga::ResourceVector peak;
  for (const auto& g : groups) {
    const auto r = g.resources();
    peak.bram18k = std::max(peak.bram18k, r.bram18k);
    peak.dsp = std::max(peak.dsp, r.dsp);
    peak.ff = std::max(peak.ff, r.ff);
    peak.lut = std::max(peak.lut, r.lut);
  }
  return peak;
}

long long Strategy::total_mults() const {
  long long total = 0;
  for (const auto& g : groups) {
    for (const auto& ipl : g.impls) total += ipl.mults_performed;
  }
  return total;
}

double Strategy::effective_gops(const nn::Network& net,
                                double frequency_hz) const {
  const double secs = latency_seconds(frequency_hz);
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(net.total_ops()) / secs / 1e9;
}

std::string Strategy::describe(const nn::Network& net) const {
  std::ostringstream os;
  os << "strategy: " << groups.size() << " fusion group(s), latency "
     << latency_cycles() << " cycles, feature-map transfer "
     << static_cast<double>(transfer_bytes()) / 1024.0 / 1024.0 << " MB\n";
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const auto& g = groups[gi];
    os << "  group " << gi << " = layers [" << g.first << ", " << g.last
       << "], latency " << g.timing.latency_cycles << " cycles, transfer "
       << g.timing.transfer_bytes / 1024 << " KB\n";
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const auto& ipl = g.impls[k];
      const nn::Layer& l = net[g.first + k];
      os << "    " << l.name << ": " << fpga::to_string(ipl.cfg.algo)
         << " p=" << ipl.cfg.parallelism(l.window())
         << " dsp=" << ipl.res.dsp << " bram=" << ipl.res.bram18k
         << " cycles=" << ipl.compute_cycles << "\n";
    }
  }
  return os.str();
}

GroupTiming evaluate_group_timing(
    const nn::Network& net, std::size_t first, std::size_t last,
    const std::vector<fpga::Implementation>& impls, const fpga::Device& dev) {
  if (first > last || last >= net.size() || impls.size() != last - first + 1) {
    throw std::invalid_argument("evaluate_group_timing: bad range");
  }
  GroupTiming t;
  t.transfer_bytes = min_transfer_bytes(net, first, last, dev.data_bytes);
  // Kernel weights stream from DDR once per image regardless of fusion
  // (paper §5: "fusion design does not help to save the kernel weight
  // transfer"); they cost DDR time but are excluded from the T budget.
  long long weight_bytes = 0;
  for (const auto& ipl : impls) {
    weight_bytes += ipl.weight_words * dev.data_bytes;
  }
  t.transfer_cycles = static_cast<long long>(
      std::ceil(static_cast<double>(t.transfer_bytes + weight_bytes) /
                dev.bytes_per_cycle()));
  for (const auto& ipl : impls) {
    t.compute_cycles = std::max(t.compute_cycles, ipl.compute_cycles);
    t.fill_cycles += ipl.fill_cycles;
  }
  // Intra-layer pipelining overlaps DDR traffic with computation
  // (paper Fig. 2(d)); the steady state is bound by the slower of the two.
  t.latency_cycles = std::max(t.compute_cycles, t.transfer_cycles) +
                     t.fill_cycles;
  return t;
}

long long min_transfer_bytes(const nn::Network& net, std::size_t first,
                             std::size_t last, int bytes_per_elem) {
  if (first > last || last >= net.size()) {
    throw std::invalid_argument("min_transfer_bytes: bad range");
  }
  return net[first].in.bytes(bytes_per_elem) +
         net[last].out.bytes(bytes_per_elem);
}

}  // namespace hetacc::core
