#pragma once
// Machine-readable strategy export: CSV rows per layer (the format the
// bench harnesses and downstream scripts consume) and a compact
// markdown table for reports.

#include <string>
#include <vector>

#include "core/report.h"
#include "core/strategy.h"

namespace hetacc::core {

/// CSV with header:
/// group,layer,name,kind,algorithm,wino_m,tn,tm,tk,parallelism,
/// dsp,bram18k,ff,lut,compute_cycles,fill_cycles
[[nodiscard]] std::string strategy_to_csv(const Strategy& s,
                                          const nn::Network& net);

/// CSV of per-group timing as priced by the cost layer, one row per fusion
/// group plus a `total` row from Strategy::totals():
/// group,first,last,compute_cycles,transfer_cycles,fill_cycles,
/// latency_cycles,transfer_bytes
[[nodiscard]] std::string group_timing_to_csv(const Strategy& s);

/// Markdown table mirroring the paper's Table 2 layout.
[[nodiscard]] std::string strategy_to_markdown(const Strategy& s,
                                               const nn::Network& net);

/// One-line CSV of the aggregate report (for sweep scripts):
/// latency_cycles,latency_ms,gops,dsp,bram18k,ff,lut,power_w,
/// gops_per_w,transfer_bytes,throughput_fps
[[nodiscard]] std::string report_to_csv_row(const StrategyReport& r);

/// Inverse of strategy_to_csv: reconstructs a Strategy from the CSV against
/// the network it was exported for. Configs, resource vectors and cycle
/// counts are read back verbatim; weight words and the per-group timing are
/// re-derived through the cost layer (they are functions of the above).
/// Throws hetacc::ParseError — with a 1-based line number — on truncated,
/// garbled or inconsistent input (bad header, non-numeric fields, unknown
/// algorithm, layer indices that do not tile the network contiguously,
/// names/kinds that disagree with `net`).
[[nodiscard]] Strategy strategy_from_csv(const std::string& csv,
                                         const nn::Network& net,
                                         const fpga::Device& dev);

/// One rung of a serving-ladder file: a full strategy plus the rung-level
/// columns the serving runtime needs (modeled service time, display label,
/// home/protect/int8 flags).
struct LadderRungCsv {
  Strategy strategy;
  long long service_cycles = 0;
  std::string label;
  bool home = false;     ///< the preferred (primary) operating point
  bool protect = false;  ///< priced under --protect hardening
  bool int8 = false;     ///< serves on the int8 datapath
};

/// Multi-strategy ladder file: the strategy CSV with four rung columns
/// appended (`rung,service_cycles,rung_label,rung_flags`), the same way the
/// DAG format appended `inputs`. Rung blocks are concatenated in ladder
/// order; every row of a block repeats its rung's metadata, so any row is
/// self-describing. `rung_flags` is a '|'-joined subset of
/// {home, protect, int8}, '-' when empty. Labels must not contain commas.
[[nodiscard]] std::string ladder_to_csv(const std::vector<LadderRungCsv>& rungs,
                                        const nn::Network& net);

/// Inverse of ladder_to_csv. Each rung block is reconstructed through
/// strategy_from_csv (protect rungs against the protection-enabled device —
/// their timing re-derives under hardened transfer pricing). Throws
/// hetacc::ParseError with the 1-based line number *in the ladder file* on
/// malformed rows, non-dense rung indices, inconsistent rung metadata
/// within a block, a missing/duplicate home rung, non-positive service
/// times, or service times not strictly decreasing down the ladder.
[[nodiscard]] std::vector<LadderRungCsv> ladder_from_csv(
    const std::string& csv, const nn::Network& net, const fpga::Device& dev);

}  // namespace hetacc::core
