#pragma once
// Machine-readable strategy export: CSV rows per layer (the format the
// bench harnesses and downstream scripts consume) and a compact
// markdown table for reports.

#include <string>

#include "core/report.h"
#include "core/strategy.h"

namespace hetacc::core {

/// CSV with header:
/// group,layer,name,kind,algorithm,wino_m,tn,tm,tk,parallelism,
/// dsp,bram18k,ff,lut,compute_cycles,fill_cycles
[[nodiscard]] std::string strategy_to_csv(const Strategy& s,
                                          const nn::Network& net);

/// CSV of per-group timing as priced by the cost layer, one row per fusion
/// group plus a `total` row from Strategy::totals():
/// group,first,last,compute_cycles,transfer_cycles,fill_cycles,
/// latency_cycles,transfer_bytes
[[nodiscard]] std::string group_timing_to_csv(const Strategy& s);

/// Markdown table mirroring the paper's Table 2 layout.
[[nodiscard]] std::string strategy_to_markdown(const Strategy& s,
                                               const nn::Network& net);

/// One-line CSV of the aggregate report (for sweep scripts):
/// latency_cycles,latency_ms,gops,dsp,bram18k,ff,lut,power_w,
/// gops_per_w,transfer_bytes,throughput_fps
[[nodiscard]] std::string report_to_csv_row(const StrategyReport& r);

}  // namespace hetacc::core
