#pragma once
// Strategy types (paper Definition 1): per-layer implementation choice
// C_i = <group, algorithm, parallelism>, fusion groups, and whole-network
// strategies. All cycle / transfer / resource accounting delegates to the
// unified accounting layer in src/cost/ — nothing in core/ re-derives a
// cost formula.

#include <string>
#include <vector>

#include "cost/group_timing.h"
#include "fpga/engine_model.h"
#include "nn/network.h"

namespace hetacc::core {

/// Timing of one fusion group executing on the device (defined in the cost
/// layer; re-exported here for the optimizer's vocabulary).
using GroupTiming = cost::GroupTiming;

/// One fusion group: layers [first, last] of the network (inclusive),
/// streamed through on-chip line buffers, executing as one DATAFLOW region.
struct FusionGroup {
  std::size_t first = 0;
  std::size_t last = 0;
  std::vector<fpga::Implementation> impls;  ///< one per member layer
  GroupTiming timing;

  [[nodiscard]] std::size_t size() const { return last - first + 1; }
  [[nodiscard]] fpga::ResourceVector resources() const;
};

/// A full strategy S = {C_i} (paper Definition 1): a partition of the
/// network into fusion groups plus per-layer implementations.
struct Strategy {
  std::vector<FusionGroup> groups;

  /// Per-group timings folded into whole-strategy accumulators — the single
  /// reduction behind latency_cycles() / pipelined_latency_cycles() /
  /// transfer_bytes(), so the three views cannot disagree.
  [[nodiscard]] cost::StrategyTotals totals() const;

  [[nodiscard]] long long latency_cycles() const;
  /// Latency when consecutive groups double-buffer their DDR traffic
  /// (prefetch next group's input / drain previous output under compute):
  /// max(total compute+fill, total DDR time). The optimizer's objective is
  /// the conservative latency_cycles(); this metric matches the fully
  /// overlapped execution the paper's unfused 660-GOPS point implies.
  [[nodiscard]] long long pipelined_latency_cycles() const;
  [[nodiscard]] long long transfer_bytes() const;
  /// Peak resource demand across groups (groups execute one at a time).
  [[nodiscard]] fpga::ResourceVector peak_resources() const;
  /// Sum over layers of multiplications actually performed.
  [[nodiscard]] long long total_mults() const;

  [[nodiscard]] double latency_seconds(double frequency_hz) const {
    return cost::latency_seconds(latency_cycles(), frequency_hz);
  }
  /// Effective performance = total network ops / end-to-end latency
  /// (footnote of paper §7.2).
  [[nodiscard]] double effective_gops(const nn::Network& net,
                                      double frequency_hz) const;

  [[nodiscard]] std::string describe(const nn::Network& net) const;
};

/// Group latency under the paper's execution model (see
/// cost::evaluate_group_timing, the single definition).
[[nodiscard]] GroupTiming evaluate_group_timing(
    const nn::Network& net, std::size_t first, std::size_t last,
    const std::vector<fpga::Implementation>& impls, const fpga::Device& dev);

/// Minimal feature-map transfer of fusing [first, last]: input of the first
/// layer + output of the last (the paper's min_t[i][j]).
[[nodiscard]] long long min_transfer_bytes(const nn::Network& net,
                                           std::size_t first,
                                           std::size_t last,
                                           int bytes_per_elem);

}  // namespace hetacc::core
