#pragma once
// Paper Algorithm 1: dynamic programming over layer ranges and a discretized
// feature-map-transfer budget. Chooses the fusion structure; Algorithm 2
// (branch_and_bound.h) supplies fusion[i][j]; a balancing post-pass trims
// resources of non-critical layers (paper §4.3 / Alg. 1 line 23-24).
//
// Two equivalent solvers are provided:
//  * optimize_interval — the paper's O(N^3 T^2) interval recursion, verbatim;
//  * optimize          — an O(N^2 T) prefix-partition reformulation that
//    exploits the fact that a group's latency does not depend on how much of
//    the leftover budget it is handed. Tests assert both agree.

#include <chrono>

#include "core/branch_and_bound.h"
#include "core/strategy.h"

namespace hetacc::core {

struct OptimizerOptions {
  /// The paper's T: upper bound on total feature-map DDR traffic, bytes.
  long long transfer_budget_bytes = 0;
  /// Discretization unit (paper §7.1 uses 10 KB).
  long long transfer_unit_bytes = 10 * 1024;
  BnbOptions bnb;
  /// Run the resource-balancing post-pass on the final structure.
  bool balance = true;
  /// Worker threads for building the fusion table (the dominant cost of both
  /// solvers). 1 = serial, 0 = hardware concurrency. Every fusion[i][j] cell
  /// is an independent Algorithm 2 search, so the strategy produced is
  /// byte-identical for every thread count.
  int threads = 1;
};

struct OptimizeResult {
  Strategy strategy;
  bool feasible = false;
  /// When !feasible: which constraint bound first — a layer with no
  /// implementation under the device resources, or a transfer budget below
  /// the minimal achievable feature-map traffic. Empty when feasible. The
  /// toolflow forwards this verbatim inside its InfeasibleError.
  std::string infeasible_reason;
  /// Number of (i, j) ranges for which Algorithm 2 ran.
  long long fusion_ranges_evaluated = 0;
  long long bnb_nodes_visited = 0;
  double wall_seconds = 0.0;
};

/// Precomputed fusion[i][j] table shared by both DP formulations.
class FusionTable {
 public:
  /// Builds fusion[i][j] for every range of up to opt.max_group_layers
  /// layers. With threads != 1, cells are evaluated by a worker pool over an
  /// atomic work queue; each cell writes only its own preallocated slot and
  /// fuse_group is pure given (net, model, opt), so the table contents do
  /// not depend on the thread count (only the node-counter summation order
  /// differs, and addition commutes).
  FusionTable(const nn::Network& net, const fpga::EngineModel& model,
              const BnbOptions& opt, int threads = 1);

  /// Range is expressed in optimizable-layer indices [0, count).
  [[nodiscard]] bool feasible(std::size_t i, std::size_t j) const;
  [[nodiscard]] long long latency(std::size_t i, std::size_t j) const;
  [[nodiscard]] const FusionGroup& group(std::size_t i, std::size_t j) const;
  /// min_t[i][j] in bytes.
  [[nodiscard]] long long min_transfer(std::size_t i, std::size_t j) const;

  [[nodiscard]] std::size_t count() const { return count_; }
  /// Network index of optimizable layer k (skips the input layer).
  [[nodiscard]] std::size_t net_index(std::size_t k) const {
    return offset_ + k;
  }
  [[nodiscard]] long long ranges_evaluated() const { return ranges_; }
  [[nodiscard]] long long nodes_visited() const { return nodes_; }

 private:
  [[nodiscard]] std::size_t cell(std::size_t i, std::size_t j) const;

  std::size_t count_ = 0;
  std::size_t offset_ = 0;  ///< 1 if the network starts with an input layer
  std::vector<std::optional<BnbResult>> table_;
  std::vector<long long> min_t_;
  long long ranges_ = 0;
  long long nodes_ = 0;
};

/// Fast prefix-partition DP (recommended).
[[nodiscard]] OptimizeResult optimize(const nn::Network& net,
                                      const fpga::EngineModel& model,
                                      const OptimizerOptions& opt);

/// The paper's Algorithm 1, interval recursion with k_mark/t_mark
/// reconstruction. Exponentially slower in T; intended for validation and
/// for faithfulness to the published pseudocode.
[[nodiscard]] OptimizeResult optimize_interval(const nn::Network& net,
                                               const fpga::EngineModel& model,
                                               const OptimizerOptions& opt);

/// Resource-balancing post-pass: within each group, every layer off the
/// critical path is re-implemented with the cheapest candidate that does not
/// lengthen the group's pipeline stage (paper: "balances the inter-layer
/// pipeline within a fusion group through resource allocation").
void balance_strategy(Strategy& s, const nn::Network& net,
                      const fpga::EngineModel& model);

}  // namespace hetacc::core
