#include "core/strategy_io.h"

#include <charconv>
#include <sstream>

#include "cost/group_timing.h"
#include "support/error.h"

namespace hetacc::core {

std::string strategy_to_csv(const Strategy& s, const nn::Network& net) {
  // Chain nets keep the legacy 16-column format byte-for-byte; DAG nets add
  // a trailing `inputs` column (producer indices joined by '|') so the
  // topology round-trips with the strategy.
  const bool dag = !net.is_chain();
  std::ostringstream os;
  os << "group,layer,name,kind,algorithm,wino_m,tn,tm,tk,parallelism,"
        "dsp,bram18k,ff,lut,compute_cycles,fill_cycles";
  if (dag) os << ",inputs";
  os << '\n';
  for (std::size_t gi = 0; gi < s.groups.size(); ++gi) {
    const auto& g = s.groups[gi];
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const nn::Layer& l = net[g.first + k];
      const auto& ipl = g.impls[k];
      os << gi << ',' << g.first + k << ',' << l.name << ','
         << nn::to_string(l.kind) << ',' << fpga::algo_label(ipl.cfg)
         << ','
         << (ipl.cfg.algo == fpga::ConvAlgo::kWinograd ? ipl.cfg.wino_m : 0)
         << ',' << ipl.cfg.tn << ',' << ipl.cfg.tm << ',' << ipl.cfg.tk << ','
         << ipl.cfg.parallelism(l.window()) << ',' << ipl.res.dsp << ','
         << ipl.res.bram18k << ',' << ipl.res.ff << ',' << ipl.res.lut << ','
         << ipl.compute_cycles << ',' << ipl.fill_cycles;
      if (dag) {
        os << ',';
        for (std::size_t e = 0; e < l.inputs.size(); ++e) {
          if (e) os << '|';
          os << l.inputs[e];
        }
      }
      os << '\n';
    }
  }
  return os.str();
}

std::string group_timing_to_csv(const Strategy& s) {
  std::ostringstream os;
  os << "group,first,last,compute_cycles,transfer_cycles,fill_cycles,"
        "latency_cycles,transfer_bytes\n";
  for (std::size_t gi = 0; gi < s.groups.size(); ++gi) {
    const auto& g = s.groups[gi];
    os << gi << ',' << g.first << ',' << g.last << ','
       << g.timing.compute_cycles << ',' << g.timing.transfer_cycles << ','
       << g.timing.fill_cycles << ',' << g.timing.latency_cycles << ','
       << g.timing.transfer_bytes << '\n';
  }
  const auto t = s.totals();
  os << "total,,," << t.compute_fill_cycles << ',' << t.transfer_cycles
     << ",," << t.latency_cycles << ',' << t.transfer_bytes << '\n';
  return os.str();
}

std::string strategy_to_markdown(const Strategy& s, const nn::Network& net) {
  std::ostringstream os;
  os << "| Layer | Algorithm | Parallelism | BRAM | DSP | FF | LUT |\n";
  os << "|---|---|---|---|---|---|---|\n";
  fpga::ResourceVector total;
  for (const auto& g : s.groups) {
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const nn::Layer& l = net[g.first + k];
      const auto& ipl = g.impls[k];
      os << "| " << l.name << " | " << fpga::algo_label(ipl.cfg) << " | "
         << ipl.cfg.parallelism(l.window()) << " | " << ipl.res.bram18k
         << " | " << ipl.res.dsp << " | " << ipl.res.ff << " | "
         << ipl.res.lut << " |\n";
      total += ipl.res;
    }
  }
  os << "| **Total** | | | " << total.bram18k << " | " << total.dsp << " | "
     << total.ff << " | " << total.lut << " |\n";
  return os.str();
}

namespace {

constexpr std::string_view kStrategyCsvHeader =
    "group,layer,name,kind,algorithm,wino_m,tn,tm,tk,parallelism,"
    "dsp,bram18k,ff,lut,compute_cycles,fill_cycles";
constexpr std::string_view kStrategyCsvHeaderDag =
    "group,layer,name,kind,algorithm,wino_m,tn,tm,tk,parallelism,"
    "dsp,bram18k,ff,lut,compute_cycles,fill_cycles,inputs";

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

long long parse_ll(std::string_view field, const char* what, int line_no) {
  long long v = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), v);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw ParseError("strategy csv: field '" + std::string(what) +
                         "' is not an integer: '" + std::string(field) + "'",
                     line_no);
  }
  return v;
}

}  // namespace

Strategy strategy_from_csv(const std::string& csv, const nn::Network& net,
                           const fpga::Device& dev) {
  std::istringstream in(csv);
  std::string line;
  int line_no = 0;

  if (!std::getline(in, line)) {
    throw ParseError("strategy csv: empty input", 1);
  }
  ++line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  bool dag = false;
  if (line == kStrategyCsvHeaderDag) {
    dag = true;
  } else if (line != kStrategyCsvHeader) {
    throw ParseError("strategy csv: bad header '" + line + "'", line_no);
  }
  const std::size_t nfields = dag ? 17 : 16;

  Strategy s;
  std::size_t expect_layer = 1;  // layer 0 is the input layer
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto f = split_fields(line);
    if (f.size() != nfields) {
      throw ParseError("strategy csv: expected " + std::to_string(nfields) +
                           " fields, got " + std::to_string(f.size()),
                       line_no);
    }
    const long long gi = parse_ll(f[0], "group", line_no);
    const long long li = parse_ll(f[1], "layer", line_no);
    const auto ngroups = static_cast<long long>(s.groups.size());
    if (gi != ngroups && gi != ngroups - 1) {
      throw ParseError("strategy csv: group index " + std::to_string(gi) +
                           " out of order (expected " +
                           std::to_string(ngroups - 1) + " or " +
                           std::to_string(ngroups) + ")",
                       line_no);
    }
    if (li != static_cast<long long>(expect_layer) ||
        li >= static_cast<long long>(net.size())) {
      throw ParseError("strategy csv: layer index " + std::to_string(li) +
                           " does not tile the network (expected " +
                           std::to_string(expect_layer) + ")",
                       line_no);
    }
    const nn::Layer& l = net[static_cast<std::size_t>(li)];
    if (f[2] != l.name) {
      throw ParseError("strategy csv: layer name '" + std::string(f[2]) +
                           "' != network layer '" + l.name + "'",
                       line_no);
    }
    if (f[3] != nn::to_string(l.kind)) {
      throw ParseError("strategy csv: kind '" + std::string(f[3]) +
                           "' disagrees with network layer '" + l.name + "'",
                       line_no);
    }

    fpga::Implementation ipl;
    if (!fpga::algo_from_label(f[4], ipl.cfg)) {
      throw ParseError(
          "strategy csv: unknown algorithm '" + std::string(f[4]) + "'",
          line_no);
    }
    if ((ipl.cfg.algo == fpga::ConvAlgo::kNone) ==
        (l.kind == nn::LayerKind::kConv)) {
      throw ParseError("strategy csv: algorithm '" + std::string(f[4]) +
                           "' invalid for layer kind '" + std::string(f[3]) +
                           "'",
                       line_no);
    }
    const long long wino_m = parse_ll(f[5], "wino_m", line_no);
    ipl.cfg.wino_m = wino_m > 0 ? static_cast<int>(wino_m) : 4;
    ipl.cfg.tn = static_cast<int>(parse_ll(f[6], "tn", line_no));
    ipl.cfg.tm = static_cast<int>(parse_ll(f[7], "tm", line_no));
    ipl.cfg.tk = static_cast<int>(parse_ll(f[8], "tk", line_no));
    if (ipl.cfg.tn <= 0 || ipl.cfg.tm <= 0 || ipl.cfg.tk <= 0) {
      throw ParseError("strategy csv: non-positive unroll factor", line_no);
    }
    (void)parse_ll(f[9], "parallelism", line_no);  // derived; validated only
    ipl.res.dsp = parse_ll(f[10], "dsp", line_no);
    ipl.res.bram18k = parse_ll(f[11], "bram18k", line_no);
    ipl.res.ff = parse_ll(f[12], "ff", line_no);
    ipl.res.lut = parse_ll(f[13], "lut", line_no);
    if (ipl.res.any_negative()) {
      throw ParseError("strategy csv: negative resource count", line_no);
    }
    ipl.compute_cycles = parse_ll(f[14], "compute_cycles", line_no);
    ipl.fill_cycles = parse_ll(f[15], "fill_cycles", line_no);
    if (ipl.compute_cycles < 0 || ipl.fill_cycles < 0) {
      throw ParseError("strategy csv: negative cycle count", line_no);
    }
    if (dag) {
      // Topology column: the producer list must match the network's edges.
      std::string expect_inputs;
      for (std::size_t e = 0; e < l.inputs.size(); ++e) {
        if (e) expect_inputs += '|';
        expect_inputs += std::to_string(l.inputs[e]);
      }
      if (f[16] != expect_inputs) {
        throw ParseError("strategy csv: inputs '" + std::string(f[16]) +
                             "' disagree with network edges '" +
                             expect_inputs + "' for layer '" + l.name + "'",
                         line_no);
      }
    }
    // Weight words are a pure function of the layer + datapath (not
    // exported). int8 packs two weights per 16-bit word.
    if (l.kind == nn::LayerKind::kConv) {
      const long long count = static_cast<long long>(l.out.c) *
                              l.conv_fan_in() * l.conv().kernel *
                              l.conv().kernel;
      ipl.weight_words = ipl.cfg.int8 ? (count + 1) / 2 : count;
      ipl.mults_performed = fpga::EngineModel::algo_mults(l, ipl.cfg);
    }

    if (gi == static_cast<long long>(s.groups.size())) {
      FusionGroup g;
      g.first = static_cast<std::size_t>(li);
      g.last = static_cast<std::size_t>(li);
      s.groups.push_back(std::move(g));
    }
    FusionGroup& g = s.groups.back();
    g.last = static_cast<std::size_t>(li);
    g.impls.push_back(std::move(ipl));
    ++expect_layer;
  }

  if (s.groups.empty()) {
    throw ParseError("strategy csv: no layer rows", line_no);
  }
  if (expect_layer != net.size()) {
    throw ParseError("strategy csv: truncated at layer " +
                         std::to_string(expect_layer) + " of " +
                         std::to_string(net.size() - 1),
                     line_no);
  }
  // Re-derive the per-group timing through the single cost layer.
  for (auto& g : s.groups) {
    g.timing = cost::evaluate_group_timing(net, g.first, g.last, g.impls, dev);
  }
  return s;
}

namespace {

std::string rung_flags_string(const LadderRungCsv& r) {
  std::string s;
  if (r.home) s += "home";
  if (r.protect) s += s.empty() ? "protect" : "|protect";
  if (r.int8) s += s.empty() ? "int8" : "|int8";
  return s.empty() ? "-" : s;
}

}  // namespace

std::string ladder_to_csv(const std::vector<LadderRungCsv>& rungs,
                          const nn::Network& net) {
  std::ostringstream os;
  const bool dag = !net.is_chain();
  os << (dag ? kStrategyCsvHeaderDag : kStrategyCsvHeader)
     << ",rung,service_cycles,rung_label,rung_flags\n";
  for (std::size_t ri = 0; ri < rungs.size(); ++ri) {
    const LadderRungCsv& r = rungs[ri];
    if (r.label.find(',') != std::string::npos) {
      throw ParseError("ladder csv: rung label '" + r.label +
                       "' must not contain commas");
    }
    const std::string suffix = "," + std::to_string(ri) + "," +
                               std::to_string(r.service_cycles) + "," +
                               r.label + "," + rung_flags_string(r);
    // Re-emit the rung's strategy through the one strategy writer and
    // append the rung columns to every layer row.
    std::istringstream rows(strategy_to_csv(r.strategy, net));
    std::string line;
    std::getline(rows, line);  // drop the per-rung header
    while (std::getline(rows, line)) {
      if (!line.empty()) os << line << suffix << '\n';
    }
  }
  return os.str();
}

std::vector<LadderRungCsv> ladder_from_csv(const std::string& csv,
                                           const nn::Network& net,
                                           const fpga::Device& dev) {
  const bool dag = !net.is_chain();
  const std::string base_header =
      std::string(dag ? kStrategyCsvHeaderDag : kStrategyCsvHeader);
  const std::size_t base_fields = dag ? 17 : 16;

  std::istringstream in(csv);
  std::string line;
  int line_no = 0;
  if (!std::getline(in, line)) {
    throw ParseError("ladder csv: empty input", 1);
  }
  ++line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != base_header + ",rung,service_cycles,rung_label,rung_flags") {
    throw ParseError("ladder csv: bad header '" + line + "'", line_no);
  }

  // Slice the file into per-rung strategy sub-documents, keeping the
  // original line number of every row so delegated parse errors can be
  // reported against the ladder file, not the reconstructed block.
  struct Block {
    LadderRungCsv rung;
    std::string body;              ///< base-format rows, no header
    std::vector<int> body_lines;   ///< original line per body row
    int first_line = 0;
  };
  std::vector<Block> blocks;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto f = split_fields(line);
    if (f.size() != base_fields + 4) {
      throw ParseError("ladder csv: expected " +
                           std::to_string(base_fields + 4) + " fields, got " +
                           std::to_string(f.size()),
                       line_no);
    }
    const long long ri = parse_ll(f[base_fields], "rung", line_no);
    const long long svc =
        parse_ll(f[base_fields + 1], "service_cycles", line_no);
    const std::string label(f[base_fields + 2]);
    const std::string_view flags = f[base_fields + 3];
    const auto nblocks = static_cast<long long>(blocks.size());
    if (ri != nblocks && ri != nblocks - 1) {
      throw ParseError("ladder csv: rung index " + std::to_string(ri) +
                           " out of order (rungs must be dense blocks, "
                           "expected " +
                           std::to_string(nblocks - 1) + " or " +
                           std::to_string(nblocks) + ")",
                       line_no);
    }
    if (ri == nblocks) {
      Block b;
      b.first_line = line_no;
      b.rung.service_cycles = svc;
      b.rung.label = label;
      for (const std::string_view tok : {std::string_view("home"),
                                         std::string_view("protect"),
                                         std::string_view("int8")}) {
        bool found = false;
        std::size_t start = 0;
        while (start <= flags.size()) {
          const std::size_t bar = flags.find('|', start);
          const std::string_view piece =
              flags.substr(start, bar == std::string_view::npos
                                      ? std::string_view::npos
                                      : bar - start);
          if (piece == tok) found = true;
          if (piece != tok && piece != "-" && piece != "home" &&
              piece != "protect" && piece != "int8") {
            throw ParseError("ladder csv: unknown rung flag '" +
                                 std::string(piece) + "'",
                             line_no);
          }
          if (bar == std::string_view::npos) break;
          start = bar + 1;
        }
        if (tok == "home") b.rung.home = found;
        if (tok == "protect") b.rung.protect = found;
        if (tok == "int8") b.rung.int8 = found;
      }
      blocks.push_back(std::move(b));
    }
    Block& b = blocks.back();
    if (svc != b.rung.service_cycles || label != b.rung.label ||
        rung_flags_string(b.rung) != flags) {
      throw ParseError("ladder csv: rung " + std::to_string(ri) +
                           " metadata changes mid-block (every row of a "
                           "rung repeats service_cycles/label/flags, flags "
                           "in home|protect|int8 order)",
                       line_no);
    }
    // Strip the four rung columns: keep everything before the comma that
    // starts field `base_fields`.
    std::size_t cut = 0;
    for (std::size_t i = 0; i < base_fields; ++i) cut += f[i].size() + 1;
    b.body += line.substr(0, cut - 1);
    b.body += '\n';
    b.body_lines.push_back(line_no);
  }
  if (blocks.empty()) {
    throw ParseError("ladder csv: no rung rows", line_no);
  }

  fpga::Device pdev = dev;
  pdev.protection.enabled = true;
  std::vector<LadderRungCsv> out;
  int homes = 0;
  for (std::size_t ri = 0; ri < blocks.size(); ++ri) {
    Block& b = blocks[ri];
    if (b.rung.service_cycles <= 0) {
      throw ParseError("ladder csv: rung " + std::to_string(ri) +
                           " service_cycles must be positive",
                       b.first_line);
    }
    if (ri > 0 &&
        b.rung.service_cycles >= out.back().service_cycles) {
      throw ParseError("ladder csv: service_cycles must strictly decrease "
                       "down the ladder (rung " + std::to_string(ri) + ")",
                       b.first_line);
    }
    if (b.rung.home) ++homes;
    try {
      b.rung.strategy = strategy_from_csv(
          base_header + "\n" + b.body, net, b.rung.protect ? pdev : dev);
    } catch (const ParseError& e) {
      // Delegated errors carry sub-document line numbers (header = 1, row k
      // = k+1); map them back onto the ladder file.
      const int sub = e.line();
      const int mapped =
          sub >= 2 && sub - 2 < static_cast<int>(b.body_lines.size())
              ? b.body_lines[static_cast<std::size_t>(sub - 2)]
              : b.first_line;
      throw ParseError("ladder csv rung " + std::to_string(ri) + ": " +
                           e.what(),
                       mapped);
    }
    out.push_back(std::move(b.rung));
  }
  if (homes != 1) {
    throw ParseError("ladder csv: exactly one rung must carry the 'home' "
                     "flag, found " + std::to_string(homes),
                     1);
  }
  return out;
}

std::string report_to_csv_row(const StrategyReport& r) {
  std::ostringstream os;
  os << r.latency_cycles << ',' << r.latency_ms << ',' << r.effective_gops
     << ',' << r.peak_resources.dsp << ',' << r.peak_resources.bram18k << ','
     << r.peak_resources.ff << ',' << r.peak_resources.lut << ','
     << r.power.total() << ',' << r.energy_efficiency_gops_per_w << ','
     << r.feature_transfer_bytes << ',' << r.throughput_fps << '\n';
  return os.str();
}

}  // namespace hetacc::core
