#include "core/strategy_io.h"

#include <sstream>

namespace hetacc::core {

std::string strategy_to_csv(const Strategy& s, const nn::Network& net) {
  std::ostringstream os;
  os << "group,layer,name,kind,algorithm,wino_m,tn,tm,tk,parallelism,"
        "dsp,bram18k,ff,lut,compute_cycles,fill_cycles\n";
  for (std::size_t gi = 0; gi < s.groups.size(); ++gi) {
    const auto& g = s.groups[gi];
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const nn::Layer& l = net[g.first + k];
      const auto& ipl = g.impls[k];
      os << gi << ',' << g.first + k << ',' << l.name << ','
         << nn::to_string(l.kind) << ',' << fpga::to_string(ipl.cfg.algo)
         << ','
         << (ipl.cfg.algo == fpga::ConvAlgo::kWinograd ? ipl.cfg.wino_m : 0)
         << ',' << ipl.cfg.tn << ',' << ipl.cfg.tm << ',' << ipl.cfg.tk << ','
         << ipl.cfg.parallelism(l.window()) << ',' << ipl.res.dsp << ','
         << ipl.res.bram18k << ',' << ipl.res.ff << ',' << ipl.res.lut << ','
         << ipl.compute_cycles << ',' << ipl.fill_cycles << '\n';
    }
  }
  return os.str();
}

std::string group_timing_to_csv(const Strategy& s) {
  std::ostringstream os;
  os << "group,first,last,compute_cycles,transfer_cycles,fill_cycles,"
        "latency_cycles,transfer_bytes\n";
  for (std::size_t gi = 0; gi < s.groups.size(); ++gi) {
    const auto& g = s.groups[gi];
    os << gi << ',' << g.first << ',' << g.last << ','
       << g.timing.compute_cycles << ',' << g.timing.transfer_cycles << ','
       << g.timing.fill_cycles << ',' << g.timing.latency_cycles << ','
       << g.timing.transfer_bytes << '\n';
  }
  const auto t = s.totals();
  os << "total,,," << t.compute_fill_cycles << ',' << t.transfer_cycles
     << ",," << t.latency_cycles << ',' << t.transfer_bytes << '\n';
  return os.str();
}

std::string strategy_to_markdown(const Strategy& s, const nn::Network& net) {
  std::ostringstream os;
  os << "| Layer | Algorithm | Parallelism | BRAM | DSP | FF | LUT |\n";
  os << "|---|---|---|---|---|---|---|\n";
  fpga::ResourceVector total;
  for (const auto& g : s.groups) {
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const nn::Layer& l = net[g.first + k];
      const auto& ipl = g.impls[k];
      os << "| " << l.name << " | " << fpga::to_string(ipl.cfg.algo) << " | "
         << ipl.cfg.parallelism(l.window()) << " | " << ipl.res.bram18k
         << " | " << ipl.res.dsp << " | " << ipl.res.ff << " | "
         << ipl.res.lut << " |\n";
      total += ipl.res;
    }
  }
  os << "| **Total** | | | " << total.bram18k << " | " << total.dsp << " | "
     << total.ff << " | " << total.lut << " |\n";
  return os.str();
}

std::string report_to_csv_row(const StrategyReport& r) {
  std::ostringstream os;
  os << r.latency_cycles << ',' << r.latency_ms << ',' << r.effective_gops
     << ',' << r.peak_resources.dsp << ',' << r.peak_resources.bram18k << ','
     << r.peak_resources.ff << ',' << r.peak_resources.lut << ','
     << r.power.total() << ',' << r.energy_efficiency_gops_per_w << ','
     << r.feature_transfer_bytes << ',' << r.throughput_fps << '\n';
  return os.str();
}

}  // namespace hetacc::core
