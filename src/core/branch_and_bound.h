#pragma once
// Paper Algorithm 2: depth-first branch-and-bound that implements layers
// [first, last] as one fusion group under the device resource constraint,
// choosing an (algorithm, parallelism) per layer to minimize the group's
// pipeline latency.

#include <optional>

#include "core/strategy.h"

namespace hetacc::core {

struct BnbOptions {
  /// Safety valve on the DFS size; the bound is rarely approached because
  /// the latency pruning (Alg. 2 lines 16-17) cuts most of the tree.
  long long max_nodes = 4'000'000;
  /// Cap on group depth (paper §7.1: 8, from memory-port limits).
  std::size_t max_group_layers = 8;
};

struct BnbResult {
  FusionGroup group;          ///< best found implementation
  long long nodes_visited = 0;
  bool node_budget_hit = false;  ///< result may be suboptimal if true
};

/// Returns nullopt when no assignment fits the resources (or the range
/// exceeds max_group_layers): the paper's fusion[i][j] = infinity case.
[[nodiscard]] std::optional<BnbResult> fuse_group(
    const nn::Network& net, std::size_t first, std::size_t last,
    const fpga::EngineModel& model, const BnbOptions& opt = {});

/// Per-layer candidate implementations, grouped by algorithm and sorted by
/// descending parallelism (the iteration order of Alg. 2 lines 10-11).
/// Exposed for tests and for the balancer.
[[nodiscard]] std::vector<std::vector<fpga::Implementation>>
layer_candidate_impls(const nn::Layer& layer, const fpga::EngineModel& model);

}  // namespace hetacc::core
