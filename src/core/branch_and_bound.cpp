#include "core/branch_and_bound.h"

#include <algorithm>
#include <limits>

#include "cost/cost_model.h"
#include "cost/group_timing.h"

namespace hetacc::core {

std::vector<std::vector<fpga::Implementation>> layer_candidate_impls(
    const nn::Layer& layer, const fpga::EngineModel& model) {
  // Buckets are keyed by (algorithm, Winograd tile size) so that within a
  // bucket fill cycles are constant and compute cycles ascend — the
  // monotonicity the in-bucket pruning break relies on.
  std::vector<std::vector<fpga::Implementation>> by_algo;
  auto bucket_of = [&](const fpga::EngineConfig& cfg)
      -> std::vector<fpga::Implementation>& {
    for (auto& b : by_algo) {
      if (!b.empty() && b.front().cfg.algo == cfg.algo &&
          (cfg.algo != fpga::ConvAlgo::kWinograd ||
           b.front().cfg.wino_m == cfg.wino_m)) {
        return b;
      }
    }
    by_algo.emplace_back();
    return by_algo.back();
  };
  // implementations() is the memoized form of candidates() + implement();
  // the DP optimizer prices each layer in O(layers * budget) ranges, so the
  // memo turns the dominant cost of fuse_group into a lookup.
  const auto impls = model.implementations(layer);
  for (const auto& ipl : *impls) {
    bucket_of(ipl.cfg).push_back(ipl);
  }
  // Within an algorithm: descending parallelism == ascending compute cycles,
  // the iteration order of Alg. 2 line 11 (so the in-loop `break` is sound).
  for (auto& b : by_algo) {
    std::sort(b.begin(), b.end(), [](const auto& a, const auto& c) {
      return a.compute_cycles < c.compute_cycles;
    });
  }
  return by_algo;
}

namespace {

struct SearchState {
  const nn::Network* net = nullptr;
  const fpga::Device* dev = nullptr;
  std::size_t first = 0, last = 0;
  // candidates[k][algo_bucket][idx]
  std::vector<std::vector<std::vector<fpga::Implementation>>> candidates;
  // Lower bounds for pruning.
  std::vector<long long> suffix_min_fill;
  std::vector<fpga::ResourceVector> suffix_min_res;
  // max over remaining layers of their fastest possible compute cycles: no
  // completion can beat this stage length.
  std::vector<long long> suffix_fastest_stage;
  long long transfer_cycles = 0;

  // Current path.
  std::vector<const fpga::Implementation*> chosen;
  fpga::ResourceVector used;
  long long nodes = 0;
  long long node_budget = 0;
  bool budget_hit = false;

  // Best so far.
  long long best_latency = std::numeric_limits<long long>::max();
  std::vector<fpga::Implementation> best_impls;

  [[nodiscard]] std::size_t depth_count() const { return last - first + 1; }
};

long long leaf_latency(const SearchState& s) {
  long long max_compute = 0;
  long long fill = 0;
  for (const auto* ipl : s.chosen) {
    max_compute = std::max(max_compute, ipl->compute_cycles);
    fill += ipl->fill_cycles;
  }
  return cost::group_latency(max_compute, s.transfer_cycles, fill);
}

void visit(SearchState& s, std::size_t k, long long path_max_compute,
           long long path_fill) {
  if (s.budget_hit) return;
  if (++s.nodes > s.node_budget) {
    s.budget_hit = true;
    return;
  }
  if (k == s.depth_count()) {
    const long long lat = leaf_latency(s);
    if (lat < s.best_latency) {
      s.best_latency = lat;
      s.best_impls.clear();
      s.best_impls.reserve(s.chosen.size());
      for (const auto* ipl : s.chosen) s.best_impls.push_back(*ipl);
    }
    return;
  }

  const long long remaining_fill = s.suffix_min_fill[k + 1];
  const long long remaining_stage = s.suffix_fastest_stage[k + 1];
  for (const auto& bucket : s.candidates[k]) {
    for (const auto& ipl : bucket) {
      // Alg. 2 lines 16-17: candidates in this bucket only get slower from
      // here, so once the bound trips we can break, not just continue.
      const long long lb = cost::group_latency(
          std::max({path_max_compute, ipl.compute_cycles, remaining_stage}),
          s.transfer_cycles, path_fill + ipl.fill_cycles + remaining_fill);
      if (lb >= s.best_latency) break;

      const fpga::ResourceVector next = s.used + ipl.res;
      // Resource feasibility including a lower bound for the unchosen tail
      // (Alg. 2 line 18's meet_constraints, strengthened).
      fpga::ResourceVector with_tail = next;
      if (k + 1 < s.depth_count()) with_tail += s.suffix_min_res[k + 1];
      if (!with_tail.fits_in(s.dev->capacity)) continue;

      s.chosen.push_back(&ipl);
      s.used = next;
      visit(s, k + 1, std::max(path_max_compute, ipl.compute_cycles),
            path_fill + ipl.fill_cycles);
      s.used = s.used - ipl.res;
      s.chosen.pop_back();
      if (s.budget_hit) return;
    }
  }
}

}  // namespace

std::optional<BnbResult> fuse_group(const nn::Network& net, std::size_t first,
                                    std::size_t last,
                                    const fpga::EngineModel& model,
                                    const BnbOptions& opt) {
  if (first > last || last >= net.size()) {
    throw std::invalid_argument("fuse_group: bad range");
  }
  if (last - first + 1 > opt.max_group_layers) return std::nullopt;
  for (std::size_t i = first; i <= last; ++i) {
    if (net[i].kind == nn::LayerKind::kInput) {
      throw std::invalid_argument("fuse_group: range contains input layer");
    }
  }

  SearchState s;
  s.net = &net;
  s.dev = &model.device();
  s.first = first;
  s.last = last;
  s.node_budget = opt.max_nodes;

  const std::size_t depth = last - first + 1;
  std::vector<std::vector<std::vector<fpga::Implementation>>> cand_by_layer;
  cand_by_layer.reserve(depth);
  for (std::size_t i = first; i <= last; ++i) {
    auto cands = layer_candidate_impls(net[i], model);
    bool any = false;
    for (const auto& b : cands) any = any || !b.empty();
    if (!any) return std::nullopt;  // layer kind we cannot build an engine for
    cand_by_layer.push_back(std::move(cands));
  }

  // Decision order: heaviest layers first. Their stage lengths dominate the
  // group latency, so fixing them early makes the latency bound bite at
  // shallow depth and collapses the search tree.
  std::vector<std::size_t> order(depth);
  for (std::size_t k = 0; k < depth; ++k) order[k] = k;
  std::vector<double> weight(depth, 0.0);
  for (std::size_t k = 0; k < depth; ++k) {
    double w = 0.0;
    for (const auto& bucket : cand_by_layer[k]) {
      for (const auto& ipl : bucket) {
        const double work = static_cast<double>(ipl.compute_cycles) *
                            static_cast<double>(std::max<long long>(
                                1, ipl.res.dsp));
        w = (w == 0.0) ? work : std::min(w, work);
      }
    }
    weight[k] = w;
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return weight[a] > weight[b];
  });
  s.candidates.resize(depth);
  for (std::size_t k = 0; k < depth; ++k) {
    s.candidates[k] = std::move(cand_by_layer[order[k]]);
  }

  // Suffix lower bounds for pruning.
  s.suffix_min_fill.assign(depth + 1, 0);
  s.suffix_min_res.assign(depth + 1, {});
  s.suffix_fastest_stage.assign(depth + 1, 0);
  for (std::size_t k = depth; k-- > 0;) {
    long long min_fill = std::numeric_limits<long long>::max();
    long long min_cycles = std::numeric_limits<long long>::max();
    fpga::ResourceVector min_res{std::numeric_limits<long long>::max(),
                                 std::numeric_limits<long long>::max(),
                                 std::numeric_limits<long long>::max(),
                                 std::numeric_limits<long long>::max()};
    for (const auto& bucket : s.candidates[k]) {
      for (const auto& ipl : bucket) {
        min_fill = std::min(min_fill, ipl.fill_cycles);
        min_cycles = std::min(min_cycles, ipl.compute_cycles);
        min_res.bram18k = std::min(min_res.bram18k, ipl.res.bram18k);
        min_res.dsp = std::min(min_res.dsp, ipl.res.dsp);
        min_res.ff = std::min(min_res.ff, ipl.res.ff);
        min_res.lut = std::min(min_res.lut, ipl.res.lut);
      }
    }
    s.suffix_min_fill[k] = min_fill + s.suffix_min_fill[k + 1];
    s.suffix_min_res[k] = min_res + s.suffix_min_res[k + 1];
    s.suffix_fastest_stage[k] =
        std::max(min_cycles, s.suffix_fastest_stage[k + 1]);
  }
  if (!s.suffix_min_res[0].fits_in(s.dev->capacity)) return std::nullopt;

  const long long transfer_bytes =
      cost::min_transfer_bytes(net, first, last, s.dev->data_bytes);
  s.transfer_cycles =
      cost::transfer_cycles(transfer_bytes, s.dev->bytes_per_cycle());

  // Greedy seed: start every layer at its cheapest implementation, then
  // repeatedly upgrade the critical (slowest) layer to its next-faster
  // candidate while resources allow. Converges to a balanced allocation and
  // hands the DFS a strong initial bound so deep groups prune immediately.
  {
    std::vector<const fpga::Implementation*> seed(depth, nullptr);
    fpga::ResourceVector used;
    auto res_cost = [](const fpga::ResourceVector& r) {
      return static_cast<double>(r.dsp) * 1e6 +
             static_cast<double>(r.bram18k) * 1e3 +
             static_cast<double>(r.lut) * 1e-2;
    };
    bool ok = true;
    for (std::size_t k = 0; k < depth; ++k) {
      for (const auto& bucket : s.candidates[k]) {
        for (const auto& ipl : bucket) {
          if (!seed[k] || res_cost(ipl.res) < res_cost(seed[k]->res)) {
            seed[k] = &ipl;
          }
        }
      }
      if (!seed[k]) { ok = false; break; }
      used += seed[k]->res;
    }
    if (ok && used.fits_in(s.dev->capacity)) {
      for (bool improved = true; improved;) {
        improved = false;
        // Critical layer = the pipeline stage that bounds the group.
        std::size_t crit = 0;
        for (std::size_t k = 1; k < depth; ++k) {
          if (seed[k]->compute_cycles > seed[crit]->compute_cycles) crit = k;
        }
        // Smallest strict improvement that still fits: fine steps keep the
        // allocation balanced instead of starving the other layers.
        const fpga::Implementation* upgrade = nullptr;
        for (const auto& bucket : s.candidates[crit]) {
          for (const auto& ipl : bucket) {
            if (ipl.compute_cycles >= seed[crit]->compute_cycles) continue;
            const fpga::ResourceVector trial =
                used - seed[crit]->res + ipl.res;
            if (!trial.fits_in(s.dev->capacity)) continue;
            if (!upgrade || ipl.compute_cycles > upgrade->compute_cycles) {
              upgrade = &ipl;
            }
          }
        }
        if (upgrade) {
          used = used - seed[crit]->res + upgrade->res;
          seed[crit] = upgrade;
          improved = true;
        }
      }
      s.chosen = seed;
      s.best_latency = leaf_latency(s);
      s.best_impls.clear();
      for (const auto* ipl : seed) s.best_impls.push_back(*ipl);
      s.chosen.clear();
    }
  }

  visit(s, 0, 0, 0);

  if (s.best_impls.empty()) return std::nullopt;

  BnbResult r;
  r.nodes_visited = s.nodes;
  r.node_budget_hit = s.budget_hit;
  r.group.first = first;
  r.group.last = last;
  // Undo the work-ordering permutation.
  r.group.impls.resize(depth);
  for (std::size_t k = 0; k < depth; ++k) {
    r.group.impls[order[k]] = std::move(s.best_impls[k]);
  }
  r.group.timing =
      cost::evaluate_group_timing(net, first, last, r.group.impls, *s.dev);
  return r;
}

}  // namespace hetacc::core
