#pragma once
// Aggregated report for a strategy: the quantities the paper's Tables 1-2
// and §7.2 energy discussion present (latency, effective GOPS, resources,
// power, energy split into compute and transfer, DSP utilization).

#include "core/strategy.h"
#include "fpga/power.h"

namespace hetacc::core {

struct StrategyReport {
  long long latency_cycles = 0;
  double latency_ms = 0.0;
  double effective_gops = 0.0;
  fpga::ResourceVector peak_resources;
  double dsp_utilization = 0.0;  ///< busy-DSP-cycles / available-DSP-cycles
  fpga::PowerBreakdown power;
  fpga::EnergyReport energy;
  long long feature_transfer_bytes = 0;
  long long weight_transfer_bytes = 0;
  double energy_efficiency_gops_per_w = 0.0;
  /// Batch throughput when successive images pipeline through the group
  /// sequence (stage interval = slowest group). Single-image latency stays
  /// latency_ms; this is the steady-state rate.
  double throughput_fps = 0.0;
};

[[nodiscard]] StrategyReport make_report(const Strategy& s,
                                         const nn::Network& net,
                                         const fpga::Device& dev);

}  // namespace hetacc::core
