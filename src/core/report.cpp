#include "core/report.h"

#include <algorithm>

#include "cost/group_timing.h"

namespace hetacc::core {

StrategyReport make_report(const Strategy& s, const nn::Network& net,
                           const fpga::Device& dev) {
  StrategyReport r;
  r.latency_cycles = s.latency_cycles();
  r.latency_ms = s.latency_seconds(dev.frequency_hz) * 1e3;
  r.effective_gops = s.effective_gops(net, dev.frequency_hz);
  r.peak_resources = s.peak_resources();
  r.feature_transfer_bytes = s.transfer_bytes();

  // DSP utilization: each layer keeps its DSPs busy for its own compute
  // cycles out of the group's latency.
  double busy = 0.0, avail = 0.0;
  long long weight_words = 0;
  for (const auto& g : s.groups) {
    const auto res = g.resources();
    avail += static_cast<double>(res.dsp) *
             static_cast<double>(g.timing.latency_cycles);
    for (const auto& ipl : g.impls) {
      busy += static_cast<double>(ipl.res.dsp) *
              static_cast<double>(std::min(ipl.compute_cycles,
                                           g.timing.latency_cycles));
    }
    weight_words += cost::weight_words(g.impls);
  }
  r.dsp_utilization = (avail > 0.0) ? busy / avail : 0.0;
  r.weight_transfer_bytes = weight_words * dev.data_bytes;

  r.power = fpga::estimate_power(dev, r.peak_resources,
                                 std::clamp(r.dsp_utilization, 0.0, 1.0));
  const double secs = s.latency_seconds(dev.frequency_hz);
  r.energy = fpga::estimate_energy(
      dev, r.power, secs,
      static_cast<double>(r.feature_transfer_bytes + r.weight_transfer_bytes));
  r.energy_efficiency_gops_per_w = fpga::energy_efficiency_gops_per_w(
      static_cast<double>(net.total_ops()), secs, r.power.total());

  long long slowest_group = 0;
  for (const auto& g : s.groups) {
    slowest_group = std::max(slowest_group, g.timing.latency_cycles);
  }
  r.throughput_fps = cost::throughput_fps(slowest_group, dev.frequency_hz);
  return r;
}

}  // namespace hetacc::core
