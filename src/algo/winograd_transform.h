#pragma once
// Winograd minimal-filtering transforms F(m, r) (Winograd 1980; Lavin 2015;
// paper §2.1). Provides the canned matrices used in the FPGA literature for
// r = 3 and a general Cook-Toom generator so non-3x3 kernels (e.g. AlexNet's
// 5x5 conv2, which the paper's Table 2 maps to Winograd) are covered too.

#include "algo/matrix.h"

namespace hetacc::algo {

/// The three transform matrices of Y = A^T [(G g) elemwise (B^T d)] A.
///   B^T : n x n   input (data) transform,     n = m + r - 1
///   G   : n x r   filter transform
///   A^T : m x n   output (inverse) transform
struct WinogradTransform {
  int m = 0;  ///< outputs per 1-D application
  int r = 0;  ///< filter taps
  Matrix bt;  ///< B^T
  Matrix g;   ///< G
  Matrix at;  ///< A^T

  [[nodiscard]] int n() const { return m + r - 1; }

  /// Multiplications a 2-D F(mxm, rxr) tile costs: n^2 (vs m^2 r^2 direct).
  [[nodiscard]] long long tile_mults_2d() const {
    return static_cast<long long>(n()) * n();
  }
  [[nodiscard]] long long direct_tile_mults_2d() const {
    return static_cast<long long>(m) * m * r * r;
  }
  /// Multiplication-reduction factor of the 2-D algorithm (paper: 4x for
  /// F(4x4, 3x3)).
  [[nodiscard]] double reduction_2d() const {
    return static_cast<double>(direct_tile_mults_2d()) /
           static_cast<double>(tile_mults_2d());
  }
};

/// The canned matrices of Lavin's paper for r = 3 (the exact constants FPGA
/// implementations hard-wire as shift/add networks).
[[nodiscard]] WinogradTransform winograd_f2x3();
[[nodiscard]] WinogradTransform winograd_f4x3();

/// General Cook-Toom construction for F(m, r) with the given finite
/// interpolation points (m + r - 2 of them; the final point is infinity).
/// Throws if points are not distinct or too few/many are supplied.
[[nodiscard]] WinogradTransform cook_toom(int m, int r,
                                          const std::vector<double>& points);

/// F(m, r) with the conventional good default point set
/// {0, 1, -1, 2, -2, 1/2, -1/2, 4, -4, ...}. Supports any m >= 1, r >= 1.
[[nodiscard]] WinogradTransform winograd(int m, int r);

/// The default point sequence used by winograd(m, r), first `count` entries.
[[nodiscard]] std::vector<double> default_points(int count);

/// Verifies the algebraic identity on a specific (g, d) pair: returns the
/// max abs error between A^T[(Gg) .* (B^T d)] and the direct FIR result.
[[nodiscard]] double verify_1d(const WinogradTransform& t,
                               const std::vector<double>& g,
                               const std::vector<double>& d);

}  // namespace hetacc::algo
