#include "algo/winograd_transform.h"

#include <cmath>
#include <set>
#include <stdexcept>

namespace hetacc::algo {

WinogradTransform winograd_f2x3() {
  // Lavin & Gray, "Fast Algorithms for Convolutional Neural Networks".
  WinogradTransform t;
  t.m = 2;
  t.r = 3;
  t.bt = Matrix{{1, 0, -1, 0},
                {0, 1, 1, 0},
                {0, -1, 1, 0},
                {0, 1, 0, -1}};
  t.g = Matrix{{1, 0, 0},
               {0.5, 0.5, 0.5},
               {0.5, -0.5, 0.5},
               {0, 0, 1}};
  t.at = Matrix{{1, 1, 1, 0},
                {0, 1, -1, -1}};
  return t;
}

WinogradTransform winograd_f4x3() {
  // The F(4x4, 3x3) constants every Winograd FPGA accelerator hard-wires
  // (paper §2.1 uses this tile size uniformly).
  WinogradTransform t;
  t.m = 4;
  t.r = 3;
  t.bt = Matrix{{4, 0, -5, 0, 1, 0},
                {0, -4, -4, 1, 1, 0},
                {0, 4, -4, -1, 1, 0},
                {0, -2, -1, 2, 1, 0},
                {0, 2, -1, -2, 1, 0},
                {0, 4, 0, -5, 0, 1}};
  t.g = Matrix{{1.0 / 4, 0, 0},
               {-1.0 / 6, -1.0 / 6, -1.0 / 6},
               {-1.0 / 6, 1.0 / 6, -1.0 / 6},
               {1.0 / 24, 1.0 / 12, 1.0 / 6},
               {1.0 / 24, -1.0 / 12, 1.0 / 6},
               {0, 0, 1}};
  t.at = Matrix{{1, 1, 1, 1, 1, 0},
                {0, 1, -1, 2, -2, 0},
                {0, 1, 1, 4, 4, 0},
                {0, 1, -1, 8, -8, 1}};
  return t;
}

namespace {

/// Coefficients of the monic polynomial with the given roots.
std::vector<double> poly_from_roots(const std::vector<double>& roots) {
  std::vector<double> coeffs{1.0};  // constant polynomial 1
  for (double root : roots) {
    // multiply by (x - root)
    std::vector<double> next(coeffs.size() + 1, 0.0);
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      next[i + 1] += coeffs[i];
      next[i] -= root * coeffs[i];
    }
    coeffs = std::move(next);
  }
  return coeffs;  // coeffs[k] multiplies x^k
}

}  // namespace

WinogradTransform cook_toom(int m, int r, const std::vector<double>& points) {
  if (m < 1 || r < 1) throw std::invalid_argument("cook_toom: m,r must be >=1");
  const int n = m + r - 1;
  const int finite = n - 1;  // the last interpolation point is infinity
  if (static_cast<int>(points.size()) != finite) {
    throw std::invalid_argument("cook_toom: need exactly " +
                                std::to_string(finite) + " finite points");
  }
  if (std::set<double>(points.begin(), points.end()).size() != points.size()) {
    throw std::invalid_argument("cook_toom: points must be distinct");
  }

  // Evaluation matrices for the polynomial-multiplication formulation:
  // rows 0..n-2 evaluate at finite points, the final row picks the leading
  // coefficient (evaluation "at infinity").
  auto evaluation = [&](int cols) {
    Matrix v(n, cols);
    for (int i = 0; i < finite; ++i) {
      double p = 1.0;
      for (int j = 0; j < cols; ++j) {
        v.at(i, j) = p;
        p *= points[i];
      }
    }
    v.at(n - 1, cols - 1) = 1.0;
    return v;
  };

  // Coefficient-extraction matrix C of the multiplication algorithm:
  // s(x) = v_inf * M(x) + sum_i v_i * L_i(x), where M is the monic
  // polynomial vanishing at all finite points (so adding it does not disturb
  // the interpolated values) and L_i are the Lagrange basis polynomials.
  // The product polynomial has degree n-1; L_i have degree n-2, M degree n-1.
  Matrix c(n, n);
  for (int i = 0; i < finite; ++i) {
    std::vector<double> other;
    other.reserve(finite - 1);
    double denom = 1.0;
    for (int j = 0; j < finite; ++j) {
      if (j == i) continue;
      other.push_back(points[j]);
      denom *= points[i] - points[j];
    }
    const std::vector<double> numer = poly_from_roots(other);
    for (std::size_t k = 0; k < numer.size(); ++k) {
      c.at(static_cast<int>(k), i) = numer[k] / denom;
    }
  }
  const std::vector<double> mpoly = poly_from_roots(points);
  for (std::size_t k = 0; k < mpoly.size(); ++k) {
    c.at(static_cast<int>(k), n - 1) = mpoly[k];
  }

  // Transposition principle: the correlation F(m, r) uses the data-side
  // evaluation matrix transposed as the output transform and the
  // coefficient matrix transposed as the input transform.
  WinogradTransform t;
  t.m = m;
  t.r = r;
  t.g = evaluation(r);
  t.at = evaluation(m).transposed();
  t.bt = c.transposed();

  // Balance the per-point scaling: multiplying row i of G by s_i and row i
  // of B^T by 1/s_i leaves Y = A^T[(Gg) .* (B^T d)]A unchanged (each
  // element-wise product keeps its value). Equalizing the row magnitudes
  // dramatically improves the conditioning of the fixed-point datapath —
  // the same normalization Lavin bakes into the canned r=3 matrices.
  for (int i = 0; i < n; ++i) {
    double g_mag = 0.0, bt_mag = 0.0;
    for (int j = 0; j < r; ++j) g_mag = std::max(g_mag, std::abs(t.g.at(i, j)));
    for (int j = 0; j < n; ++j) {
      bt_mag = std::max(bt_mag, std::abs(t.bt.at(i, j)));
    }
    if (g_mag <= 0.0 || bt_mag <= 0.0) continue;
    const double s = std::sqrt(bt_mag / g_mag);
    for (int j = 0; j < r; ++j) t.g.at(i, j) *= s;
    for (int j = 0; j < n; ++j) t.bt.at(i, j) /= s;
  }
  return t;
}

std::vector<double> default_points(int count) {
  // The conventional sequence balancing numeric conditioning: 0, then
  // +/-2^k and +/-2^-k pairs. Matches the point sets used for the canned
  // r=3 transforms.
  static const std::vector<double> seq = {0,   1,        -1,       2,
                                          -2,  0.5,      -0.5,     4,
                                          -4,  0.25,     -0.25,    8,
                                          -8,  0.125,    -0.125,   16,
                                          -16, 0.0625,   -0.0625,  32};
  if (count > static_cast<int>(seq.size())) {
    throw std::invalid_argument("default_points: sequence exhausted");
  }
  return {seq.begin(), seq.begin() + count};
}

WinogradTransform winograd(int m, int r) {
  if (m == 2 && r == 3) return winograd_f2x3();
  if (m == 4 && r == 3) return winograd_f4x3();
  return cook_toom(m, r, default_points(m + r - 2));
}

double verify_1d(const WinogradTransform& t, const std::vector<double>& g,
                 const std::vector<double>& d) {
  if (static_cast<int>(g.size()) != t.r || static_cast<int>(d.size()) != t.n()) {
    throw std::invalid_argument("verify_1d: size mismatch");
  }
  const std::vector<double> gg = t.g.apply(g);
  const std::vector<double> dd = t.bt.apply(d);
  std::vector<double> prod(gg.size());
  for (std::size_t i = 0; i < prod.size(); ++i) prod[i] = gg[i] * dd[i];
  const std::vector<double> y = t.at.apply(prod);

  double worst = 0.0;
  for (int i = 0; i < t.m; ++i) {
    double direct = 0.0;
    for (int u = 0; u < t.r; ++u) direct += g[u] * d[i + u];
    worst = std::max(worst, std::abs(y[i] - direct));
  }
  return worst;
}

}  // namespace hetacc::algo
