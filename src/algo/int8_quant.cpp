#include "algo/int8_quant.h"

#include <algorithm>

namespace hetacc::algo {

ActQuant choose_act_quant(float mn, float mx) {
  // Extend to contain 0.0 so padding (real zero) lands exactly on a code.
  mn = std::min(mn, 0.0f);
  mx = std::max(mx, 0.0f);
  ActQuant aq;
  const double range = static_cast<double>(mx) - static_cast<double>(mn);
  if (!(range > 0.0) || !std::isfinite(range)) return aq;  // degenerate
  aq.scale = static_cast<float>(range / 255.0);
  // Nudge the zero-point so real 0.0 maps to an exact integer code.
  const double zp = -128.0 - static_cast<double>(mn) / aq.scale;
  aq.zp = static_cast<std::int32_t>(
      std::clamp(std::llrint(zp), -128ll, 127ll));
  return aq;
}

Int8ConvQuant make_int8_conv_quant(const nn::FilterBank& filters,
                                   float in_min, float in_max, float out_min,
                                   float out_max, bool per_channel) {
  Int8ConvQuant q;
  const ActQuant in = choose_act_quant(in_min, in_max);
  const ActQuant out = choose_act_quant(out_min, out_max);
  q.in_scale = in.scale;
  q.in_zp = in.zp;
  q.out_scale = out.scale;
  q.out_zp = out.zp;
  q.per_channel = per_channel;

  const int out_c = filters.out_channels();
  const std::size_t rows =
      out_c > 0 ? static_cast<std::size_t>(filters.size()) / out_c : 0;
  if (per_channel) {
    q.w_scales.resize(static_cast<std::size_t>(out_c));
    for (int n = 0; n < out_c; ++n) {
      float m = 0.0f;
      const float* w = filters.data() + static_cast<std::size_t>(n) * rows;
      for (std::size_t j = 0; j < rows; ++j) m = std::max(m, std::abs(w[j]));
      q.w_scales[static_cast<std::size_t>(n)] = m > 0.0f ? m / 127.0f : 1.0f;
    }
  } else {
    float m = 0.0f;
    for (std::int64_t j = 0; j < filters.size(); ++j) {
      m = std::max(m, std::abs(filters.data()[j]));
    }
    q.w_scales.assign(1, m > 0.0f ? m / 127.0f : 1.0f);
  }
  return q;
}

std::vector<std::int8_t> quantize_filters_i8(const nn::FilterBank& filters,
                                             const Int8ConvQuant& q) {
  const int out_c = filters.out_channels();
  const std::size_t rows =
      out_c > 0 ? static_cast<std::size_t>(filters.size()) / out_c : 0;
  std::vector<std::int8_t> wq(static_cast<std::size_t>(filters.size()));
  for (int n = 0; n < out_c; ++n) {
    const float sc =
        q.per_channel ? q.w_scales[static_cast<std::size_t>(n)]
                      : q.w_scales[0];
    const float* src = filters.data() + static_cast<std::size_t>(n) * rows;
    std::int8_t* dst = wq.data() + static_cast<std::size_t>(n) * rows;
    for (std::size_t j = 0; j < rows; ++j) {
      long long v = std::llrint(static_cast<double>(src[j]) /
                                static_cast<double>(sc));
      v = std::clamp(v, -127ll, 127ll);  // symmetric: -128 unused
      dst[j] = static_cast<std::int8_t>(v);
    }
  }
  return wq;
}

std::vector<std::int32_t> fold_bias_i8(const std::vector<float>& bias,
                                       const Int8ConvQuant& q,
                                       const std::int8_t* wq, int out_c,
                                       int rows) {
  std::vector<std::int32_t> out(static_cast<std::size_t>(out_c));
  for (int n = 0; n < out_c; ++n) {
    const float wsc =
        q.per_channel ? q.w_scales[static_cast<std::size_t>(n)]
                      : q.w_scales[0];
    const double acc_scale =
        static_cast<double>(q.in_scale) * static_cast<double>(wsc);
    long long b = 0;
    if (n < static_cast<int>(bias.size())) {
      b = std::llrint(static_cast<double>(bias[static_cast<std::size_t>(n)]) /
                      acc_scale);
    }
    std::int64_t wsum = 0;
    const std::int8_t* w = wq + static_cast<std::size_t>(n) * rows;
    for (int j = 0; j < rows; ++j) wsum += w[j];
    const long long folded = b - static_cast<long long>(q.in_zp) * wsum;
    out[static_cast<std::size_t>(n)] = static_cast<std::int32_t>(
        std::clamp(folded, static_cast<long long>(INT32_MIN),
                   static_cast<long long>(INT32_MAX)));
  }
  return out;
}

std::vector<float> requant_scales(const Int8ConvQuant& q, int out_c) {
  std::vector<float> out(static_cast<std::size_t>(out_c));
  for (int n = 0; n < out_c; ++n) {
    const float wsc =
        q.per_channel ? q.w_scales[static_cast<std::size_t>(n)]
                      : q.w_scales[0];
    out[static_cast<std::size_t>(n)] = static_cast<float>(
        static_cast<double>(q.in_scale) * static_cast<double>(wsc) /
        static_cast<double>(q.out_scale));
  }
  return out;
}

}  // namespace hetacc::algo
