#include "algo/matrix.h"

#include <cmath>
#include <sstream>

namespace hetacc::algo {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ ? static_cast<int>(rows.begin()->size()) : 0;
  data_.reserve(static_cast<std::size_t>(rows_) * cols_);
  for (const auto& r : rows) {
    if (static_cast<int>(r.size()) != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix*: dim mismatch");
  Matrix out(rows_, rhs.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (int c = 0; c < rhs.cols_; ++c) out.at(r, c) += a * rhs.at(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix+: dim mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  return *this + rhs.scaled(-1.0);
}

Matrix Matrix::scaled(double s) const {
  Matrix out = *this;
  for (auto& x : out.data_) x *= s;
  return out;
}

Matrix Matrix::identity(int n) {
  Matrix out(n, n);
  for (int i = 0; i < n; ++i) out.at(i, i) = 1.0;
  return out;
}

std::vector<double> Matrix::apply(const std::vector<double>& v) const {
  if (static_cast<int>(v.size()) != cols_) {
    throw std::invalid_argument("Matrix::apply: size mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int c = 0; c < cols_; ++c) acc += at(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("max_abs_diff: dim mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

std::string Matrix::str() const {
  std::ostringstream os;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) os << at(r, c) << (c + 1 < cols_ ? " " : "");
    os << "\n";
  }
  return os.str();
}

}  // namespace hetacc::algo
