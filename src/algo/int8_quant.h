#pragma once
// The int8 quantization scheme shared by every i8 consumer (the algo conv
// variant, the streaming conv engine, calibration): per-channel symmetric
// weights (zero-point 0, scale = max|w| / 127) and per-tensor asymmetric
// activations (scale = range / 255 with the range extended to contain 0.0,
// zero-point nudged onto the grid). The input zero-point correction is
// pre-folded into the i32 bias, so the GEMM core runs on raw i8 codes and
// the requantize-on-writeback epilogue (kernels/gemm.h) needs only a
// per-channel scale and the output zero-point.

#include <cmath>
#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace hetacc::algo {

/// Asymmetric activation grid: real v maps to code round(v / scale) + zp.
struct ActQuant {
  float scale = 1.0f;
  std::int32_t zp = 0;
};

/// Chooses the activation grid covering [mn, mx] (extended to include 0.0 so
/// the padding value is exactly representable), full i8 range, nudged
/// zero-point. Degenerate ranges get scale 1, zp 0.
[[nodiscard]] ActQuant choose_act_quant(float mn, float mx);

/// Real -> i8 code on an activation grid (RNE via llrint, saturating).
[[nodiscard]] inline std::int8_t quantize_act_i8(float v, float scale,
                                                 std::int32_t zp) {
  long long q = std::llrint(static_cast<double>(v) /
                            static_cast<double>(scale)) +
                zp;
  if (q < -128) q = -128;
  if (q > 127) q = 127;
  return static_cast<std::int8_t>(q);
}

/// i8 code -> real on an activation grid.
[[nodiscard]] inline float dequantize_act_i8(std::int8_t q, float scale,
                                             std::int32_t zp) {
  return static_cast<float>(static_cast<std::int32_t>(q) - zp) * scale;
}

/// Full quantization recipe of one conv layer.
struct Int8ConvQuant {
  float in_scale = 1.0f;
  std::int32_t in_zp = 0;
  float out_scale = 1.0f;
  std::int32_t out_zp = 0;
  std::vector<float> w_scales;  ///< out_c entries, or 1 when !per_channel
  bool per_channel = true;
};

/// Derives the recipe from the float filters and observed activation ranges.
[[nodiscard]] Int8ConvQuant make_int8_conv_quant(const nn::FilterBank& filters,
                                                 float in_min, float in_max,
                                                 float out_min, float out_max,
                                                 bool per_channel = true);

/// Weights rounded to symmetric i8 codes, row-major out_c x (in_c * k * k).
[[nodiscard]] std::vector<std::int8_t> quantize_filters_i8(
    const nn::FilterBank& filters, const Int8ConvQuant& q);

/// i32 bias with the input-zero-point correction folded in:
///   bias_q[n] = round(bias_f[n] / (in_scale * w_scale[n]))
///             - in_zp * sum_k wq[n][k]
/// so the GEMM can run on raw codes (sum_k wq * q_in) and still produce the
/// zero-point-corrected accumulator. `rows` = in_c * k * k.
[[nodiscard]] std::vector<std::int32_t> fold_bias_i8(
    const std::vector<float>& bias, const Int8ConvQuant& q,
    const std::int8_t* wq, int out_c, int rows);

/// Per-channel requantization scales for the writeback epilogue:
///   in_scale * w_scale[n] / out_scale.
[[nodiscard]] std::vector<float> requant_scales(const Int8ConvQuant& q,
                                                int out_c);

}  // namespace hetacc::algo
