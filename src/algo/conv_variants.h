#pragma once
// Alternative convolution implementations: im2col+GEMM (the "matrix
// multiplication" structure transformation of paper §1) and the 16-bit
// fixed-point direct convolution used by the conventional PE model.
//
// The hot paths run on the blocked kernels in src/kernels/ and honor the
// kernel-layer thread default (kernels::set_num_threads); the retained
// `*_scalar` variants are the seed implementations, kept as golden
// references for equivalence tests and as the bench baseline.

#include "algo/int8_quant.h"
#include "nn/tensor.h"

namespace hetacc::algo {

/// im2col lowering: returns the patch matrix with one column per output
/// pixel and one row per (channel, ku, kv) tap.
[[nodiscard]] std::vector<float> im2col(const nn::Tensor& in, int kernel,
                                        int stride, int pad, int out_h,
                                        int out_w);

/// Convolution as GEMM over the im2col matrix. Runs on the cache-blocked
/// packed GEMM; compared against the direct reference in tests.
[[nodiscard]] nn::Tensor conv_im2col(const nn::Tensor& in,
                                     const nn::FilterBank& filters,
                                     const std::vector<float>& bias,
                                     int stride, int pad, bool fused_relu);

/// Seed scalar implementation of conv_im2col (golden reference / bench
/// baseline).
[[nodiscard]] nn::Tensor conv_im2col_scalar(const nn::Tensor& in,
                                            const nn::FilterBank& filters,
                                            const std::vector<float>& bias,
                                            int stride, int pad,
                                            bool fused_relu);

/// Direct convolution on a 16-bit fixed datapath: inputs/weights quantized
/// to Q(data_frac)/Q(weight_frac), 32-bit products, wide accumulation,
/// output re-quantized to Q(out_frac). Models a DSP48E MAC tree. Runs as
/// int16 im2col + exact int64 GEMM — bit-exact with the scalar seed for any
/// thread count (integer accumulation commutes).
[[nodiscard]] nn::Tensor conv_direct_fixed(const nn::Tensor& in,
                                           const nn::FilterBank& filters,
                                           const std::vector<float>& bias,
                                           int stride, int pad,
                                           bool fused_relu, int data_frac,
                                           int weight_frac, int out_frac);

/// Seed scalar implementation of conv_direct_fixed (golden bit-exactness
/// reference / bench baseline).
[[nodiscard]] nn::Tensor conv_direct_fixed_scalar(
    const nn::Tensor& in, const nn::FilterBank& filters,
    const std::vector<float>& bias, int stride, int pad, bool fused_relu,
    int data_frac, int weight_frac, int out_frac);

/// Convolution on the int8 datapath: input quantized to the asymmetric i8
/// activation grid of `q`, weights to per-channel symmetric i8, exact i32
/// accumulation via im2col + gemm_i8, requantize-on-writeback to i8 output
/// codes (bias and fused ReLU folded into the epilogue), then dequantized
/// back to a float tensor on the output grid. Bit-exact for any thread count
/// and ISA stamp (see kernels/gemm.h).
[[nodiscard]] nn::Tensor conv_quant_i8(const nn::Tensor& in,
                                       const nn::FilterBank& filters,
                                       const std::vector<float>& bias,
                                       int stride, int pad, bool fused_relu,
                                       const Int8ConvQuant& q);

/// Scalar golden reference of conv_quant_i8: naive loop nest over i8 codes
/// with the same requantize_i32 epilogue — must match bit-for-bit.
[[nodiscard]] nn::Tensor conv_quant_i8_scalar(const nn::Tensor& in,
                                              const nn::FilterBank& filters,
                                              const std::vector<float>& bias,
                                              int stride, int pad,
                                              bool fused_relu,
                                              const Int8ConvQuant& q);

}  // namespace hetacc::algo
