#pragma once
// Alternative convolution implementations: im2col+GEMM (the "matrix
// multiplication" structure transformation of paper §1) and the 16-bit
// fixed-point direct convolution used by the conventional PE model.

#include "nn/tensor.h"

namespace hetacc::algo {

/// im2col lowering: returns the patch matrix with one column per output
/// pixel and one row per (channel, ku, kv) tap.
[[nodiscard]] std::vector<float> im2col(const nn::Tensor& in, int kernel,
                                        int stride, int pad, int out_h,
                                        int out_w);

/// Convolution as GEMM over the im2col matrix. Bit-identical math order to
/// BLAS-style accumulation; compared against the direct reference in tests.
[[nodiscard]] nn::Tensor conv_im2col(const nn::Tensor& in,
                                     const nn::FilterBank& filters,
                                     const std::vector<float>& bias,
                                     int stride, int pad, bool fused_relu);

/// Direct convolution on a 16-bit fixed datapath: inputs/weights quantized
/// to Q(data_frac)/Q(weight_frac), 32-bit products, wide accumulation,
/// output re-quantized to Q(out_frac). Models a DSP48E MAC tree.
[[nodiscard]] nn::Tensor conv_direct_fixed(const nn::Tensor& in,
                                           const nn::FilterBank& filters,
                                           const std::vector<float>& bias,
                                           int stride, int pad,
                                           bool fused_relu, int data_frac,
                                           int weight_frac, int out_frac);

}  // namespace hetacc::algo
