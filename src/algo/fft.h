#pragma once
// Radix-2 FFT and FFT-based convolution — the third "computation structure
// transformation" the paper's introduction lists next to matrix
// multiplication and Winograd. Self-contained (no external FFT library), so
// the algorithm-exploration framework can count its multiplications and
// validate it against direct convolution.

#include <complex>
#include <vector>

#include "nn/tensor.h"

namespace hetacc::algo {

using Complex = std::complex<double>;

/// In-place iterative radix-2 Cooley-Tukey. `n` must be a power of two.
void fft(std::vector<Complex>& a, bool inverse);

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// 2-D FFT over a row-major `rows x cols` grid (both powers of two).
void fft2d(std::vector<Complex>& a, int rows, int cols, bool inverse);

/// Linear (full) 1-D convolution via FFT; result size = |a| + |b| - 1.
[[nodiscard]] std::vector<double> fft_convolve(const std::vector<double>& a,
                                               const std::vector<double>& b);

/// FFT-based 2-D convolution layer: zero-pads each channel plane and kernel
/// to a common power-of-two grid, multiplies spectra, accumulates across
/// input channels in the frequency domain, and crops the valid region.
/// Stride 1 only (like Winograd); `pad` is the conv zero padding.
[[nodiscard]] nn::Tensor conv_fft(const nn::Tensor& in,
                                  const nn::FilterBank& filters,
                                  const std::vector<float>& bias, int pad,
                                  bool fused_relu);

/// Real multiplications an FFT-based implementation spends on the layer:
/// forward transforms of the input planes, one spectrum product per
/// (in, out) channel pair, inverse transforms per output plane. Kernel
/// spectra are precomputed offline (mirroring the Winograd filter
/// transform). A complex multiply counts as 4 real multiplications, an
/// N-point FFT as (N/2)log2(N) complex multiplies.
[[nodiscard]] long long fft_layer_mults(int in_channels, int out_channels,
                                        int in_h, int in_w, int kernel,
                                        int pad);

}  // namespace hetacc::algo
