#pragma once
// 2-D nested Winograd convolution F(m x m, r x r) over whole feature maps
// (paper §2.1): input split into (m+r-1)^2 tiles stepping by m, transform-
// domain channel accumulation, one inverse transform per output tile.

#include "algo/winograd_transform.h"
#include "kernels/wino_gemm.h"
#include "nn/tensor.h"

namespace hetacc::algo {

/// Filters pre-transformed into the Winograd domain: U[n][m] is an n() x n()
/// matrix per (output, input) channel pair. FPGA flows do this offline; we
/// expose it so tests can check it is computed once, not per tile.
struct TransformedFilters {
  WinogradTransform t;
  int out_channels = 0;
  int in_channels = 0;
  std::vector<Matrix> u;  ///< [out * in_channels + in]

  [[nodiscard]] const Matrix& at(int out, int in) const {
    return u.at(static_cast<std::size_t>(out) * in_channels + in);
  }
};

[[nodiscard]] TransformedFilters transform_filters(const WinogradTransform& t,
                                                   const nn::FilterBank& f);

/// Re-lays the pre-transformed filters out as the n^2 (out_c x in_c) planes
/// the batched transform-domain GEMM consumes (kernels/wino_gemm.h). Done
/// once per layer; the plan is shared across images and engine instances.
[[nodiscard]] kernels::WinogradPlan pack_winograd_plan(
    const TransformedFilters& tf);

/// Float Winograd convolution, stride 1 (the algorithm's applicability
/// condition, paper §2.1). `pad` is the conv zero padding.
[[nodiscard]] nn::Tensor winograd_conv(const WinogradTransform& t,
                                       const nn::Tensor& in,
                                       const nn::FilterBank& filters,
                                       const std::vector<float>& bias, int pad,
                                       bool fused_relu);

/// Same but with pre-transformed filters (how an accelerator would run it).
[[nodiscard]] nn::Tensor winograd_conv_pretransformed(
    const TransformedFilters& tf, const nn::Tensor& in,
    const std::vector<float>& bias, int pad, bool fused_relu);

/// Seed per-tile scalar implementation (golden reference / bench baseline).
[[nodiscard]] nn::Tensor winograd_conv_pretransformed_scalar(
    const TransformedFilters& tf, const nn::Tensor& in,
    const std::vector<float>& bias, int pad, bool fused_relu);

/// 16-bit datapath model: the element-wise multiplier inputs (transformed
/// data and transformed filters) are quantized to 16 bits before the DSP
/// multiply, accumulation is wide, output re-quantized to Q(out_frac).
/// This mirrors a DSP48E-based Winograd PE.
[[nodiscard]] nn::Tensor winograd_conv_fixed(const WinogradTransform& t,
                                             const nn::Tensor& in,
                                             const nn::FilterBank& filters,
                                             const std::vector<float>& bias,
                                             int pad, bool fused_relu,
                                             int data_frac, int out_frac);

/// Seed per-tile scalar implementation; winograd_conv_fixed is bit-exact
/// against it for any thread count (tested in test_kernels).
[[nodiscard]] nn::Tensor winograd_conv_fixed_scalar(
    const WinogradTransform& t, const nn::Tensor& in,
    const nn::FilterBank& filters, const std::vector<float>& bias, int pad,
    bool fused_relu, int data_frac, int out_frac);

/// True if the layer geometry admits the Winograd algorithm in our flow:
/// stride 1 and a supported tap count (paper: small kernels, stride 1).
[[nodiscard]] bool winograd_applicable(int kernel, int stride);

/// Total scalar multiplications Winograd F(mxm,rxr) spends on a conv layer
/// of the given geometry (edge tiles padded to full tiles, as on the FPGA).
[[nodiscard]] long long winograd_layer_mults(const WinogradTransform& t,
                                             int in_channels, int out_channels,
                                             int out_h, int out_w);

}  // namespace hetacc::algo
