#include "algo/winograd_stride2.h"

#include <algorithm>
#include <stdexcept>

#include "algo/winograd_conv.h"

namespace hetacc::algo {

nn::Tensor polyphase_component(const nn::Tensor& in, int phase_row,
                               int phase_col) {
  if (phase_row < 0 || phase_row > 1 || phase_col < 0 || phase_col > 1) {
    throw std::invalid_argument("polyphase_component: phase must be 0 or 1");
  }
  const nn::Shape s = in.shape();
  const int h = (s.h - phase_row + 1) / 2;
  const int w = (s.w - phase_col + 1) / 2;
  nn::Tensor out(s.c, h, w);
  for (int c = 0; c < s.c; ++c) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        out.at(c, y, x) = in.at(c, 2 * y + phase_row, 2 * x + phase_col);
      }
    }
  }
  return out;
}

std::vector<nn::FilterBank> polyphase_filters(const nn::FilterBank& f) {
  const int k = f.kernel();
  if (k < 2) {
    throw std::invalid_argument("polyphase_filters: kernel must be >= 2");
  }
  const int r = (k + 1) / 2;
  std::vector<nn::FilterBank> phases;
  phases.reserve(4);
  for (int p = 0; p < 2; ++p) {
    for (int q = 0; q < 2; ++q) {
      nn::FilterBank pf(f.out_channels(), f.in_channels(), r);
      for (int n = 0; n < f.out_channels(); ++n) {
        for (int m = 0; m < f.in_channels(); ++m) {
          for (int a = 0; 2 * a + p < k; ++a) {
            for (int b = 0; 2 * b + q < k; ++b) {
              pf.at(n, m, a, b) = f.at(n, m, 2 * a + p, 2 * b + q);
            }
          }
        }
      }
      phases.push_back(std::move(pf));
    }
  }
  return phases;
}

nn::Tensor winograd_conv_stride2(int wino_m, const nn::Tensor& in,
                                 const nn::FilterBank& filters,
                                 const std::vector<float>& bias, int pad,
                                 bool fused_relu) {
  const nn::Shape s = in.shape();
  const int k = filters.kernel();
  const int r = (k + 1) / 2;
  const int hp = s.h + 2 * pad;
  const int wp = s.w + 2 * pad;
  const int oh = (hp - k) / 2 + 1;
  const int ow = (wp - k) / 2 + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("winograd_conv_stride2: bad geometry");
  }
  const auto phase_filters = polyphase_filters(filters);
  const WinogradTransform t = winograd(wino_m, r);

  nn::Tensor out(filters.out_channels(), oh, ow);
  for (int p = 0; p < 2; ++p) {
    for (int q = 0; q < 2; ++q) {
      // Phase component sized so the stride-1 valid convolution yields
      // exactly oh x ow outputs; positions past the padded image are zero
      // (they only meet the zero taps of the square-padded phase kernel).
      nn::Tensor comp(s.c, oh + r - 1, ow + r - 1);
      for (int c = 0; c < s.c; ++c) {
        for (int y = 0; y < oh + r - 1; ++y) {
          const int row = 2 * y + p - pad;  // back to unpadded coordinates
          if (row < 0 || row >= s.h) continue;
          for (int x = 0; x < ow + r - 1; ++x) {
            const int col = 2 * x + q - pad;
            if (col < 0 || col >= s.w) continue;
            comp.at(c, y, x) = in.at(c, row, col);
          }
        }
      }
      const nn::Tensor part =
          winograd_conv(t, comp, phase_filters[static_cast<std::size_t>(p) * 2 + q],
                        {}, /*pad=*/0, /*fused_relu=*/false);
      for (int n = 0; n < out.shape().c; ++n) {
        for (int i = 0; i < oh; ++i) {
          for (int j = 0; j < ow; ++j) {
            out.at(n, i, j) += part.at(n, i, j);
          }
        }
      }
    }
  }
  for (int n = 0; n < out.shape().c; ++n) {
    const float b = bias.empty() ? 0.0f : bias[n];
    for (int i = 0; i < oh; ++i) {
      for (int j = 0; j < ow; ++j) {
        float v = out.at(n, i, j) + b;
        if (fused_relu) v = std::max(v, 0.0f);
        out.at(n, i, j) = v;
      }
    }
  }
  return out;
}

long long winograd_stride2_mults(int wino_m, int in_channels,
                                 int out_channels, int out_h, int out_w,
                                 int kernel) {
  const int r = (kernel + 1) / 2;
  const WinogradTransform t = winograd(wino_m, r);
  return 4 * winograd_layer_mults(t, in_channels, out_channels, out_h, out_w);
}

}  // namespace hetacc::algo
