#include "algo/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace hetacc::algo {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

void fft2d(std::vector<Complex>& a, int rows, int cols, bool inverse) {
  if (static_cast<std::size_t>(rows) * cols != a.size()) {
    throw std::invalid_argument("fft2d: size mismatch");
  }
  std::vector<Complex> tmp;
  // Rows.
  for (int r = 0; r < rows; ++r) {
    tmp.assign(a.begin() + static_cast<std::ptrdiff_t>(r) * cols,
               a.begin() + static_cast<std::ptrdiff_t>(r + 1) * cols);
    fft(tmp, inverse);
    std::copy(tmp.begin(), tmp.end(),
              a.begin() + static_cast<std::ptrdiff_t>(r) * cols);
  }
  // Columns.
  tmp.resize(static_cast<std::size_t>(rows));
  for (int c = 0; c < cols; ++c) {
    for (int r = 0; r < rows; ++r) {
      tmp[static_cast<std::size_t>(r)] =
          a[static_cast<std::size_t>(r) * cols + c];
    }
    fft(tmp, inverse);
    for (int r = 0; r < rows; ++r) {
      a[static_cast<std::size_t>(r) * cols + c] =
          tmp[static_cast<std::size_t>(r)];
    }
  }
}

std::vector<double> fft_convolve(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_n = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_n);
  std::vector<Complex> fa(n), fb(n);
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];
  fft(fa, false);
  fft(fb, false);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  fft(fa, true);
  std::vector<double> out(out_n);
  for (std::size_t i = 0; i < out_n; ++i) out[i] = fa[i].real();
  return out;
}

nn::Tensor conv_fft(const nn::Tensor& in, const nn::FilterBank& filters,
                    const std::vector<float>& bias, int pad,
                    bool fused_relu) {
  const nn::Shape s = in.shape();
  if (s.c != filters.in_channels()) {
    throw std::invalid_argument("conv_fft: channel mismatch");
  }
  const int k = filters.kernel();
  const int hp = s.h + 2 * pad;
  const int wp = s.w + 2 * pad;
  const int oh = hp - k + 1;
  const int ow = wp - k + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv_fft: kernel larger than padded input");
  }
  const int rows = static_cast<int>(next_pow2(static_cast<std::size_t>(hp + k - 1)));
  const int cols = static_cast<int>(next_pow2(static_cast<std::size_t>(wp + k - 1)));
  const std::size_t grid = static_cast<std::size_t>(rows) * cols;

  // Forward transforms of the (padded) input planes.
  std::vector<std::vector<Complex>> fin(static_cast<std::size_t>(s.c));
  for (int c = 0; c < s.c; ++c) {
    std::vector<Complex> plane(grid);
    for (int h = 0; h < s.h; ++h) {
      for (int w = 0; w < s.w; ++w) {
        plane[static_cast<std::size_t>(h + pad) * cols + (w + pad)] =
            in.at(c, h, w);
      }
    }
    fft2d(plane, rows, cols, false);
    fin[static_cast<std::size_t>(c)] = std::move(plane);
  }

  nn::Tensor out(filters.out_channels(), oh, ow);
  std::vector<Complex> acc(grid);
  std::vector<Complex> fker(grid);
  for (int n = 0; n < filters.out_channels(); ++n) {
    std::fill(acc.begin(), acc.end(), Complex{});
    for (int m = 0; m < s.c; ++m) {
      // Kernel reversed in both axes: linear convolution with the reversed
      // kernel is cross-correlation, which is what a conv layer computes.
      std::fill(fker.begin(), fker.end(), Complex{});
      for (int u = 0; u < k; ++u) {
        for (int v = 0; v < k; ++v) {
          fker[static_cast<std::size_t>(u) * cols + v] =
              filters.at(n, m, k - 1 - u, k - 1 - v);
        }
      }
      fft2d(fker, rows, cols, false);
      const auto& fi = fin[static_cast<std::size_t>(m)];
      for (std::size_t i = 0; i < grid; ++i) acc[i] += fi[i] * fker[i];
    }
    fft2d(acc, rows, cols, true);
    const float b = bias.empty() ? 0.0f : bias[n];
    for (int i = 0; i < oh; ++i) {
      for (int j = 0; j < ow; ++j) {
        float val = static_cast<float>(
                        acc[static_cast<std::size_t>(i + k - 1) * cols +
                            (j + k - 1)]
                            .real()) +
                    b;
        if (fused_relu) val = std::max(val, 0.0f);
        out.at(n, i, j) = val;
      }
    }
  }
  return out;
}

long long fft_layer_mults(int in_channels, int out_channels, int in_h,
                          int in_w, int kernel, int pad) {
  const long long rows =
      static_cast<long long>(next_pow2(static_cast<std::size_t>(
          in_h + 2 * pad + kernel - 1)));
  const long long cols =
      static_cast<long long>(next_pow2(static_cast<std::size_t>(
          in_w + 2 * pad + kernel - 1)));
  const long long grid = rows * cols;
  const double log_grid = std::log2(static_cast<double>(grid));
  // Complex multiplies: (grid/2)*log2(grid) per 2-D FFT.
  const double fft_cmults = static_cast<double>(grid) / 2.0 * log_grid;
  const double forward = static_cast<double>(in_channels) * fft_cmults;
  const double inverse = static_cast<double>(out_channels) * fft_cmults;
  const double products = static_cast<double>(in_channels) * out_channels *
                          static_cast<double>(grid);
  return static_cast<long long>(4.0 * (forward + inverse + products));
}

}  // namespace hetacc::algo
