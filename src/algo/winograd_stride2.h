#pragma once
// Stride-2 Winograd via polyphase decomposition — an extension beyond the
// paper's "stride 1 only" applicability rule (§2.1). A stride-2 KxK
// convolution splits into four stride-1 convolutions over the even/odd
// row/column phases of the input, with the kernel split the same way:
//
//   out[i,j] = sum_{p,q in {0,1}} (in_pq * g_pq)[i,j],
//   in_pq[x,y] = in[2x+p, 2y+q],   g_pq[a,b] = g[2a+p, 2b+q].
//
// Each phase kernel has ceil((K-p)/2) x ceil((K-q)/2) taps; zero-padding it
// to r x r with r = ceil(K/2) lets all four run through the same F(m, r)
// Winograd engine, and the four phase outputs simply add.

#include "algo/winograd_transform.h"
#include "nn/tensor.h"

namespace hetacc::algo {

/// One polyphase component of a (padded) feature map.
[[nodiscard]] nn::Tensor polyphase_component(const nn::Tensor& in, int
                                             phase_row, int phase_col);

/// The four r x r phase kernels (r = ceil(K/2)) of a stride-2 filter bank,
/// indexed [phase_row * 2 + phase_col], zero-padded to square.
[[nodiscard]] std::vector<nn::FilterBank> polyphase_filters(
    const nn::FilterBank& filters);

/// Stride-2 convolution computed as four Winograd F(m, r) convolutions.
/// `pad` is the original conv padding; kernel size must be >= 2.
[[nodiscard]] nn::Tensor winograd_conv_stride2(int wino_m,
                                               const nn::Tensor& in,
                                               const nn::FilterBank& filters,
                                               const std::vector<float>& bias,
                                               int pad, bool fused_relu);

/// Multiplications the decomposed implementation spends: four F(m, r) phase
/// convolutions at r = ceil(K/2) over the (half-resolution) output grid.
[[nodiscard]] long long winograd_stride2_mults(int wino_m, int in_channels,
                                               int out_channels, int out_h,
                                               int out_w, int kernel);

}  // namespace hetacc::algo
