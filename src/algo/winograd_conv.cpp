#include "algo/winograd_conv.h"

#include <algorithm>
#include <cmath>

#include "fixed/fixed16.h"
#include "kernels/parallel.h"

namespace hetacc::algo {

namespace {

/// d_tile -> B^T d B for an n x n tile.
Matrix input_transform(const WinogradTransform& t, const Matrix& d) {
  return t.bt * d * t.bt.transposed();
}

/// Extracts an n x n input tile whose top-left output element is
/// (tile_i * m, tile_j * m); reads zero for conv padding and beyond edges.
Matrix extract_tile(const nn::Tensor& in, int channel, int tile_i, int tile_j,
                    int n, int m, int pad) {
  Matrix d(n, n);
  const nn::Shape s = in.shape();
  const int h0 = tile_i * m - pad;
  const int w0 = tile_j * m - pad;
  for (int u = 0; u < n; ++u) {
    const int h = h0 + u;
    if (h < 0 || h >= s.h) continue;
    for (int v = 0; v < n; ++v) {
      const int w = w0 + v;
      if (w < 0 || w >= s.w) continue;
      d.at(u, v) = in.at(channel, h, w);
    }
  }
  return d;
}

/// Flattens the transform matrices shared by both plan flavors.
void flatten_transforms(const WinogradTransform& t, std::vector<double>& bt,
                        std::vector<double>& at) {
  const int n = t.n();
  bt.resize(static_cast<std::size_t>(n) * n);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) bt[static_cast<std::size_t>(a) * n + b] = t.bt.at(a, b);
  }
  at.resize(static_cast<std::size_t>(t.m) * n);
  for (int a = 0; a < t.m; ++a) {
    for (int b = 0; b < n; ++b) at[static_cast<std::size_t>(a) * n + b] = t.at.at(a, b);
  }
}

}  // namespace

TransformedFilters transform_filters(const WinogradTransform& t,
                                     const nn::FilterBank& f) {
  if (f.kernel() != t.r) {
    throw std::invalid_argument("transform_filters: kernel != r");
  }
  TransformedFilters tf{t, f.out_channels(), f.in_channels(), {}};
  tf.u.reserve(static_cast<std::size_t>(f.out_channels()) * f.in_channels());
  for (int n = 0; n < f.out_channels(); ++n) {
    for (int m = 0; m < f.in_channels(); ++m) {
      Matrix g(t.r, t.r);
      for (int u = 0; u < t.r; ++u) {
        for (int v = 0; v < t.r; ++v) g.at(u, v) = f.at(n, m, u, v);
      }
      tf.u.push_back(t.g * g * t.g.transposed());
    }
  }
  return tf;
}

kernels::WinogradPlan pack_winograd_plan(const TransformedFilters& tf) {
  const WinogradTransform& t = tf.t;
  const int n = t.n();
  kernels::WinogradPlan plan;
  plan.m = t.m;
  plan.r = t.r;
  plan.n = n;
  plan.out_c = tf.out_channels;
  plan.in_c = tf.in_channels;
  flatten_transforms(t, plan.bt, plan.at);
  plan.u.resize(static_cast<std::size_t>(n) * n * tf.out_channels *
                tf.in_channels);
  const std::size_t plane = static_cast<std::size_t>(tf.out_channels) *
                            tf.in_channels;
  for (int oc = 0; oc < tf.out_channels; ++oc) {
    for (int ic = 0; ic < tf.in_channels; ++ic) {
      const Matrix& u = tf.at(oc, ic);
      const std::size_t off = static_cast<std::size_t>(oc) * tf.in_channels + ic;
      for (int ab = 0; ab < n * n; ++ab) {
        plan.u[static_cast<std::size_t>(ab) * plane + off] =
            u.at(ab / n, ab % n);
      }
    }
  }
  return plan;
}

nn::Tensor winograd_conv_pretransformed(const TransformedFilters& tf,
                                        const nn::Tensor& in,
                                        const std::vector<float>& bias,
                                        int pad, bool fused_relu) {
  const nn::Shape is = in.shape();
  if (is.c != tf.in_channels) {
    throw std::invalid_argument("winograd_conv: channel mismatch");
  }
  const int oh = is.h + 2 * pad - tf.t.r + 1;  // stride 1
  const int ow = is.w + 2 * pad - tf.t.r + 1;
  nn::Tensor out(tf.out_channels, oh, ow);
  const kernels::WinogradPlan plan = pack_winograd_plan(tf);
  kernels::winograd_conv_f32(plan, in.data(), is.h, is.w, pad,
                             bias.empty() ? nullptr : bias.data(), fused_relu,
                             out.data(), oh, ow, /*threads=*/0);
  return out;
}

nn::Tensor winograd_conv_pretransformed_scalar(const TransformedFilters& tf,
                                               const nn::Tensor& in,
                                               const std::vector<float>& bias,
                                               int pad, bool fused_relu) {
  const WinogradTransform& t = tf.t;
  const nn::Shape is = in.shape();
  if (is.c != tf.in_channels) {
    throw std::invalid_argument("winograd_conv: channel mismatch");
  }
  const int n = t.n();
  const int oh = is.h + 2 * pad - t.r + 1;  // stride 1
  const int ow = is.w + 2 * pad - t.r + 1;
  nn::Tensor out(tf.out_channels, oh, ow);

  const int tiles_h = (oh + t.m - 1) / t.m;
  const int tiles_w = (ow + t.m - 1) / t.m;
  std::vector<Matrix> v(static_cast<std::size_t>(is.c));

  for (int ti = 0; ti < tiles_h; ++ti) {
    for (int tj = 0; tj < tiles_w; ++tj) {
      for (int c = 0; c < is.c; ++c) {
        v[static_cast<std::size_t>(c)] =
            input_transform(t, extract_tile(in, c, ti, tj, n, t.m, pad));
      }
      for (int oc = 0; oc < tf.out_channels; ++oc) {
        // Channel accumulation happens in the transform domain: one inverse
        // transform per output tile, not per channel.
        Matrix acc(n, n);
        for (int c = 0; c < is.c; ++c) {
          const Matrix& u = tf.at(oc, c);
          const Matrix& vv = v[static_cast<std::size_t>(c)];
          for (int a = 0; a < n; ++a) {
            for (int b = 0; b < n; ++b) acc.at(a, b) += u.at(a, b) * vv.at(a, b);
          }
        }
        const Matrix y = t.at * acc * t.at.transposed();
        const float b = bias.empty() ? 0.0f : bias[oc];
        for (int a = 0; a < t.m; ++a) {
          const int h = ti * t.m + a;
          if (h >= oh) break;
          for (int bcol = 0; bcol < t.m; ++bcol) {
            const int w = tj * t.m + bcol;
            if (w >= ow) break;
            float val = static_cast<float>(y.at(a, bcol)) + b;
            if (fused_relu) val = std::max(val, 0.0f);
            out.at(oc, h, w) = val;
          }
        }
      }
    }
  }
  return out;
}

nn::Tensor winograd_conv(const WinogradTransform& t, const nn::Tensor& in,
                         const nn::FilterBank& filters,
                         const std::vector<float>& bias, int pad,
                         bool fused_relu) {
  return winograd_conv_pretransformed(transform_filters(t, filters), in, bias,
                                      pad, fused_relu);
}

namespace {

/// Numeric-format selection shared by the fixed path and its scalar twin.
/// Mirrors the seed exactly: u_frac from the largest transformed-filter
/// magnitude, v_frac from the B^T row gain applied twice times max|d|.
void choose_winograd_fracs(const WinogradTransform& t,
                           const TransformedFilters& tf, const nn::Tensor& in,
                           int* u_frac, int* v_frac) {
  const int n = t.n();
  double u_max = 0.0;
  for (const Matrix& u : tf.u) {
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) u_max = std::max(u_max, std::abs(u.at(a, b)));
    }
  }
  *u_frac = fixed::choose_frac_bits(static_cast<float>(u_max));

  double bt_gain = 0.0;
  for (int a = 0; a < n; ++a) {
    double row = 0.0;
    for (int b = 0; b < n; ++b) row += std::abs(t.bt.at(a, b));
    bt_gain = std::max(bt_gain, row);
  }
  float d_max = 0.0f;
  for (float x : in.vec()) d_max = std::max(d_max, std::abs(x));
  *v_frac = fixed::choose_frac_bits(
      static_cast<float>(bt_gain * bt_gain * std::max(d_max, 1e-6f)));
}

}  // namespace

nn::Tensor winograd_conv_fixed(const WinogradTransform& t,
                               const nn::Tensor& in,
                               const nn::FilterBank& filters,
                               const std::vector<float>& bias, int pad,
                               bool fused_relu, int data_frac, int out_frac) {
  using fixed::Fixed16;
  const TransformedFilters tf = transform_filters(t, filters);
  const nn::Shape is = in.shape();
  const int n = t.n();
  const int oh = is.h + 2 * pad - t.r + 1;
  const int ow = is.w + 2 * pad - t.r + 1;
  nn::Tensor out(tf.out_channels, oh, ow);

  int u_frac = 0, v_frac = 0;
  choose_winograd_fracs(t, tf, in, &u_frac, &v_frac);

  kernels::WinogradPlanFixed plan;
  plan.m = t.m;
  plan.r = t.r;
  plan.n = n;
  plan.out_c = tf.out_channels;
  plan.in_c = tf.in_channels;
  plan.u_frac = u_frac;
  flatten_transforms(t, plan.bt, plan.at);
  // The seed quantized the same filter values once per tile; quantization is
  // deterministic, so hoisting it to the plan is bit-identical.
  plan.u.resize(static_cast<std::size_t>(n) * n * tf.out_channels *
                tf.in_channels);
  const std::size_t plane = static_cast<std::size_t>(tf.out_channels) *
                            tf.in_channels;
  for (int oc = 0; oc < tf.out_channels; ++oc) {
    for (int ic = 0; ic < tf.in_channels; ++ic) {
      const Matrix& u = tf.at(oc, ic);
      const std::size_t off = static_cast<std::size_t>(oc) * tf.in_channels + ic;
      for (int ab = 0; ab < n * n; ++ab) {
        plan.u[static_cast<std::size_t>(ab) * plane + off] = Fixed16::quantize(
            static_cast<float>(u.at(ab / n, ab % n)), u_frac);
      }
    }
  }

  kernels::winograd_conv_i16(plan, in.data(), is.h, is.w, pad,
                             bias.empty() ? nullptr : bias.data(), fused_relu,
                             data_frac, v_frac, out_frac, out.data(), oh, ow,
                             /*threads=*/0);
  return out;
}

nn::Tensor winograd_conv_fixed_scalar(const WinogradTransform& t,
                                      const nn::Tensor& in,
                                      const nn::FilterBank& filters,
                                      const std::vector<float>& bias, int pad,
                                      bool fused_relu, int data_frac,
                                      int out_frac) {
  using fixed::Fixed16;
  const TransformedFilters tf = transform_filters(t, filters);
  const nn::Shape is = in.shape();
  const int n = t.n();
  const int oh = is.h + 2 * pad - t.r + 1;
  const int ow = is.w + 2 * pad - t.r + 1;
  nn::Tensor out(tf.out_channels, oh, ow);

  int u_frac = 0, v_frac = 0;
  choose_winograd_fracs(t, tf, in, &u_frac, &v_frac);

  const int tiles_h = (oh + t.m - 1) / t.m;
  const int tiles_w = (ow + t.m - 1) / t.m;
  std::vector<Matrix> v(static_cast<std::size_t>(is.c));

  for (int ti = 0; ti < tiles_h; ++ti) {
    for (int tj = 0; tj < tiles_w; ++tj) {
      for (int c = 0; c < is.c; ++c) {
        Matrix d = extract_tile(in, c, ti, tj, n, t.m, pad);
        // Input samples enter the datapath already quantized to 16 bits.
        for (int a = 0; a < n; ++a) {
          for (int b = 0; b < n; ++b) {
            d.at(a, b) = fixed::quantize_to_float(
                static_cast<float>(d.at(a, b)), data_frac);
          }
        }
        v[static_cast<std::size_t>(c)] = input_transform(t, d);
      }
      for (int oc = 0; oc < tf.out_channels; ++oc) {
        std::int64_t acc[64] = {};  // n <= 8 covers every supported tile size
        if (n * n > 64) throw std::logic_error("winograd_conv_fixed: tile too big");
        for (int c = 0; c < is.c; ++c) {
          const Matrix& u = tf.at(oc, c);
          const Matrix& vv = v[static_cast<std::size_t>(c)];
          for (int a = 0; a < n; ++a) {
            for (int b = 0; b < n; ++b) {
              // 16-bit multiplier inputs, 32-bit product, wide accumulate.
              const std::int16_t uq =
                  Fixed16::quantize(static_cast<float>(u.at(a, b)), u_frac);
              const std::int16_t vq = Fixed16::quantize(
                  static_cast<float>(vv.at(a, b)), v_frac);
              acc[a * n + b] += static_cast<std::int32_t>(uq) * vq;
            }
          }
        }
        Matrix macc(n, n);
        const double scale = std::ldexp(1.0, -(u_frac + v_frac));
        for (int a = 0; a < n; ++a) {
          for (int b = 0; b < n; ++b) {
            macc.at(a, b) = static_cast<double>(acc[a * n + b]) * scale;
          }
        }
        const Matrix y = t.at * macc * t.at.transposed();
        const float bia = bias.empty() ? 0.0f : bias[oc];
        for (int a = 0; a < t.m; ++a) {
          const int h = ti * t.m + a;
          if (h >= oh) break;
          for (int bcol = 0; bcol < t.m; ++bcol) {
            const int w = tj * t.m + bcol;
            if (w >= ow) break;
            float val = static_cast<float>(y.at(a, bcol)) + bia;
            if (fused_relu) val = std::max(val, 0.0f);
            out.at(oc, h, w) = fixed::quantize_to_float(val, out_frac);
          }
        }
      }
    }
  }
  return out;
}

bool winograd_applicable(int kernel, int stride) {
  // Paper §2.1: "implemented most efficiently for the cases where kernel
  // size is small and stride is 1". We support taps up to 7 via Cook-Toom;
  // AlexNet's 5x5 conv2 (Table 2 runs it as Winograd) is covered by F(m,5).
  return stride == 1 && kernel >= 2 && kernel <= 7;
}

long long winograd_layer_mults(const WinogradTransform& t, int in_channels,
                               int out_channels, int out_h, int out_w) {
  const long long tiles = static_cast<long long>((out_h + t.m - 1) / t.m) *
                          ((out_w + t.m - 1) / t.m);
  return tiles * t.tile_mults_2d() * in_channels * out_channels;
}

}  // namespace hetacc::algo
