#include "algo/conv_variants.h"

#include <algorithm>
#include <cmath>

#include "fixed/fixed16.h"
#include "kernels/arena.h"
#include "kernels/gemm.h"
#include "kernels/parallel.h"

namespace hetacc::algo {

std::vector<float> im2col(const nn::Tensor& in, int kernel, int stride,
                          int pad, int out_h, int out_w) {
  const nn::Shape s = in.shape();
  const std::size_t rows =
      static_cast<std::size_t>(s.c) * kernel * kernel;
  const std::size_t cols = static_cast<std::size_t>(out_h) * out_w;
  std::vector<float> mat(rows * cols);
  kernels::im2col_f32(in.data(), s.c, s.h, s.w, kernel, stride, pad, out_h,
                      out_w, mat.data());
  return mat;
}

nn::Tensor conv_im2col(const nn::Tensor& in, const nn::FilterBank& filters,
                       const std::vector<float>& bias, int stride, int pad,
                       bool fused_relu) {
  const nn::Shape s = in.shape();
  const int k = filters.kernel();
  const int oh = (s.h + 2 * pad - k) / stride + 1;
  const int ow = (s.w + 2 * pad - k) / stride + 1;
  const int cols = oh * ow;
  const int rows = s.c * k * k;

  // The patch matrix is transient: it lives in the scratch arena so repeated
  // convolutions reuse one warm allocation instead of churning the heap.
  kernels::ScratchArena& arena = kernels::ScratchArena::tls();
  kernels::ScratchArena::Scope scope(arena);
  float* mat = arena.alloc<float>(static_cast<std::size_t>(rows) * cols);
  kernels::im2col_f32(in.data(), s.c, s.h, s.w, k, stride, pad, oh, ow, mat,
                      /*threads=*/0);

  nn::Tensor out(filters.out_channels(), oh, ow);
  kernels::gemm_f32(filters.out_channels(), cols, rows, filters.data(), rows,
                    mat, cols, out.data(), cols,
                    bias.empty() ? nullptr : bias.data(), fused_relu,
                    /*threads=*/0);
  return out;
}

nn::Tensor conv_im2col_scalar(const nn::Tensor& in,
                              const nn::FilterBank& filters,
                              const std::vector<float>& bias, int stride,
                              int pad, bool fused_relu) {
  const nn::Shape s = in.shape();
  const int k = filters.kernel();
  const int oh = (s.h + 2 * pad - k) / stride + 1;
  const int ow = (s.w + 2 * pad - k) / stride + 1;
  const std::size_t cols = static_cast<std::size_t>(oh) * ow;
  const std::size_t rows = static_cast<std::size_t>(s.c) * k * k;
  const std::vector<float> mat = im2col(in, k, stride, pad, oh, ow);

  nn::Tensor out(filters.out_channels(), oh, ow);
  for (int n = 0; n < filters.out_channels(); ++n) {
    const float* w = filters.data() + static_cast<std::size_t>(n) * rows;
    float* dst = out.data() + static_cast<std::size_t>(n) * cols;
    const float b = bias.empty() ? 0.0f : bias[n];
    for (std::size_t j = 0; j < cols; ++j) dst[j] = b;
    for (std::size_t r = 0; r < rows; ++r) {
      const float wv = w[r];
      if (wv == 0.0f) continue;
      const float* src = mat.data() + r * cols;
      for (std::size_t j = 0; j < cols; ++j) dst[j] += wv * src[j];
    }
    if (fused_relu) {
      for (std::size_t j = 0; j < cols; ++j) dst[j] = std::max(dst[j], 0.0f);
    }
  }
  return out;
}

nn::Tensor conv_direct_fixed(const nn::Tensor& in,
                             const nn::FilterBank& filters,
                             const std::vector<float>& bias, int stride,
                             int pad, bool fused_relu, int data_frac,
                             int weight_frac, int out_frac) {
  using fixed::Fixed16;
  const nn::Shape s = in.shape();
  const int k = filters.kernel();
  const int oh = (s.h + 2 * pad - k) / stride + 1;
  const int ow = (s.w + 2 * pad - k) / stride + 1;
  const int cols = oh * ow;
  const int rows = s.c * k * k;
  nn::Tensor out(filters.out_channels(), oh, ow);

  // Quantize operands up front (this is what the DDR/BRAM contents are).
  // Quantization is elementwise, so the index space chunks freely.
  kernels::ScratchArena& arena = kernels::ScratchArena::tls();
  kernels::ScratchArena::Scope scope(arena);
  std::int16_t* inq =
      arena.alloc<std::int16_t>(static_cast<std::size_t>(in.size()));
  kernels::parallel_for(static_cast<std::size_t>(in.size()), 4096, 0,
                        [&](std::size_t i) {
                          inq[i] = Fixed16::quantize(in.data()[i], data_frac);
                        });
  std::int16_t* wq =
      arena.alloc<std::int16_t>(static_cast<std::size_t>(filters.size()));
  kernels::parallel_for(
      static_cast<std::size_t>(filters.size()), 4096, 0, [&](std::size_t i) {
        wq[i] = Fixed16::quantize(filters.data()[i], weight_frac);
      });

  std::int16_t* mat =
      arena.alloc<std::int16_t>(static_cast<std::size_t>(rows) * cols);
  kernels::im2col_i16(inq, s.c, s.h, s.w, k, stride, pad, oh, ow, mat,
                      /*threads=*/0);
  std::int64_t* acc = arena.alloc<std::int64_t>(
      static_cast<std::size_t>(filters.out_channels()) * cols);
  kernels::gemm_i16(filters.out_channels(), cols, rows, wq, rows, mat, cols,
                    acc, cols, /*threads=*/0);

  const double scale = std::ldexp(1.0, -(data_frac + weight_frac));
  kernels::parallel_for(
      static_cast<std::size_t>(filters.out_channels()), [&](std::size_t n) {
        const float b = bias.empty() ? 0.0f : bias[n];
        const std::int64_t* arow = acc + n * cols;
        float* dst = out.data() + n * cols;
        for (int j = 0; j < cols; ++j) {
          float val =
              static_cast<float>(static_cast<double>(arow[j]) * scale) + b;
          if (fused_relu) val = std::max(val, 0.0f);
          dst[j] = fixed::quantize_to_float(val, out_frac);
        }
      });
  return out;
}

nn::Tensor conv_quant_i8(const nn::Tensor& in, const nn::FilterBank& filters,
                         const std::vector<float>& bias, int stride, int pad,
                         bool fused_relu, const Int8ConvQuant& q) {
  const nn::Shape s = in.shape();
  const int k = filters.kernel();
  const int oh = (s.h + 2 * pad - k) / stride + 1;
  const int ow = (s.w + 2 * pad - k) / stride + 1;
  const int cols = oh * ow;
  const int rows = s.c * k * k;
  const int out_c = filters.out_channels();

  // Constants of the layer (weights, folded bias, requant scales). The
  // streaming engines derive these once per layer; here they are derived per
  // call — this variant's job is numerics, the engines own amortization.
  const std::vector<std::int8_t> wq = quantize_filters_i8(filters, q);
  const std::vector<std::int32_t> bq = fold_bias_i8(bias, q, wq.data(),
                                                    out_c, rows);
  const std::vector<float> rs = requant_scales(q, out_c);
  const std::int8_t pad_value = quantize_act_i8(0.0f, q.in_scale, q.in_zp);

  kernels::ScratchArena& arena = kernels::ScratchArena::tls();
  kernels::ScratchArena::Scope scope(arena);
  std::int8_t* inq =
      arena.alloc<std::int8_t>(static_cast<std::size_t>(in.size()));
  kernels::parallel_for(static_cast<std::size_t>(in.size()), 4096, 0,
                        [&](std::size_t i) {
                          inq[i] = quantize_act_i8(in.data()[i], q.in_scale,
                                                   q.in_zp);
                        });

  std::int8_t* mat =
      arena.alloc<std::int8_t>(static_cast<std::size_t>(rows) * cols);
  kernels::im2col_i8(inq, s.c, s.h, s.w, k, stride, pad, oh, ow, mat,
                     pad_value, /*threads=*/0);

  std::int8_t* outq =
      arena.alloc<std::int8_t>(static_cast<std::size_t>(out_c) * cols);
  kernels::QuantParams qp;
  qp.scales = rs.data();
  qp.per_channel = true;
  qp.bias = bq.data();
  qp.zero_point = q.out_zp;
  qp.relu = fused_relu;
  kernels::gemm_i8(out_c, cols, rows, wq.data(), rows, mat, cols, outq, cols,
                   qp, /*threads=*/0);

  nn::Tensor out(out_c, oh, ow);
  kernels::parallel_for(
      static_cast<std::size_t>(out_c) * cols, 4096, 0, [&](std::size_t i) {
        out.data()[i] = dequantize_act_i8(outq[i], q.out_scale, q.out_zp);
      });
  return out;
}

nn::Tensor conv_quant_i8_scalar(const nn::Tensor& in,
                                const nn::FilterBank& filters,
                                const std::vector<float>& bias, int stride,
                                int pad, bool fused_relu,
                                const Int8ConvQuant& q) {
  const nn::Shape s = in.shape();
  const int k = filters.kernel();
  const int oh = (s.h + 2 * pad - k) / stride + 1;
  const int ow = (s.w + 2 * pad - k) / stride + 1;
  const int rows = s.c * k * k;
  const int out_c = filters.out_channels();

  const std::vector<std::int8_t> wq = quantize_filters_i8(filters, q);
  const std::vector<std::int32_t> bq = fold_bias_i8(bias, q, wq.data(),
                                                    out_c, rows);
  const std::vector<float> rs = requant_scales(q, out_c);
  const std::int8_t pad_value = quantize_act_i8(0.0f, q.in_scale, q.in_zp);

  std::vector<std::int8_t> inq(static_cast<std::size_t>(in.size()));
  for (std::size_t i = 0; i < inq.size(); ++i) {
    inq[i] = quantize_act_i8(in.data()[i], q.in_scale, q.in_zp);
  }
  const auto in_at = [&](int c, int h, int w) -> std::int32_t {
    if (h < 0 || h >= s.h || w < 0 || w >= s.w) return pad_value;
    return inq[(static_cast<std::size_t>(c) * s.h + h) * s.w + w];
  };

  nn::Tensor out(out_c, oh, ow);
  for (int n = 0; n < out_c; ++n) {
    const std::int8_t* w = wq.data() + static_cast<std::size_t>(n) * rows;
    for (int i = 0; i < oh; ++i) {
      for (int j = 0; j < ow; ++j) {
        std::int32_t acc = bq[static_cast<std::size_t>(n)];
        std::size_t r = 0;
        for (int c = 0; c < s.c; ++c) {
          for (int u = 0; u < k; ++u) {
            for (int v = 0; v < k; ++v, ++r) {
              acc += static_cast<std::int32_t>(w[r]) *
                     in_at(c, i * stride + u - pad, j * stride + v - pad);
            }
          }
        }
        const std::int8_t oq = kernels::requantize_i32(
            acc, rs[static_cast<std::size_t>(n)], q.out_zp, fused_relu);
        out.at(n, i, j) = dequantize_act_i8(oq, q.out_scale, q.out_zp);
      }
    }
  }
  return out;
}

nn::Tensor conv_direct_fixed_scalar(const nn::Tensor& in,
                                    const nn::FilterBank& filters,
                                    const std::vector<float>& bias, int stride,
                                    int pad, bool fused_relu, int data_frac,
                                    int weight_frac, int out_frac) {
  using fixed::Fixed16;
  const nn::Shape s = in.shape();
  const int k = filters.kernel();
  const int oh = (s.h + 2 * pad - k) / stride + 1;
  const int ow = (s.w + 2 * pad - k) / stride + 1;
  nn::Tensor out(filters.out_channels(), oh, ow);

  std::vector<std::int16_t> inq(static_cast<std::size_t>(in.size()));
  for (std::size_t i = 0; i < inq.size(); ++i) {
    inq[i] = Fixed16::quantize(in.data()[i], data_frac);
  }
  std::vector<std::int16_t> wq(static_cast<std::size_t>(filters.size()));
  for (std::size_t i = 0; i < wq.size(); ++i) {
    wq[i] = Fixed16::quantize(filters.data()[i], weight_frac);
  }

  const auto in_at = [&](int c, int h, int w) -> std::int32_t {
    if (h < 0 || h >= s.h || w < 0 || w >= s.w) return 0;
    return inq[(static_cast<std::size_t>(c) * s.h + h) * s.w + w];
  };

  const double scale = std::ldexp(1.0, -(data_frac + weight_frac));
  for (int n = 0; n < filters.out_channels(); ++n) {
    const float b = bias.empty() ? 0.0f : bias[n];
    for (int i = 0; i < oh; ++i) {
      for (int j = 0; j < ow; ++j) {
        std::int64_t acc = 0;
        for (int c = 0; c < s.c; ++c) {
          for (int u = 0; u < k; ++u) {
            for (int v = 0; v < k; ++v) {
              const std::int32_t x = in_at(c, i * stride + u - pad,
                                           j * stride + v - pad);
              const std::int32_t w =
                  wq[((static_cast<std::size_t>(n) * s.c + c) * k + u) * k + v];
              acc += x * w;
            }
          }
        }
        float val = static_cast<float>(static_cast<double>(acc) * scale) + b;
        if (fused_relu) val = std::max(val, 0.0f);
        out.at(n, i, j) = fixed::quantize_to_float(val, out_frac);
      }
    }
  }
  return out;
}

}  // namespace hetacc::algo
