#pragma once
// Tiny dense matrix of doubles used for Winograd transform construction.
// Not a general linear-algebra library: just what Cook-Toom needs.

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace hetacc::algo {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, fill) {
    if (rows < 0 || cols < 0) throw std::invalid_argument("Matrix: negative dim");
  }
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  [[nodiscard]] double& at(int r, int c) { return data_[index(r, c)]; }
  [[nodiscard]] double at(int r, int c) const { return data_[index(r, c)]; }

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  [[nodiscard]] Matrix scaled(double s) const;

  [[nodiscard]] static Matrix identity(int n);

  /// Multiply a vector: returns (*this) * v.
  [[nodiscard]] std::vector<double> apply(const std::vector<double>& v) const;

  [[nodiscard]] double max_abs_diff(const Matrix& other) const;
  [[nodiscard]] std::string str() const;

 private:
  [[nodiscard]] std::size_t index(int r, int c) const {
    if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
      throw std::out_of_range("Matrix index (" + std::to_string(r) + "," +
                              std::to_string(c) + ") out of " +
                              std::to_string(rows_) + "x" +
                              std::to_string(cols_));
    }
    return static_cast<std::size_t>(r) * cols_ + c;
  }

  int rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hetacc::algo
