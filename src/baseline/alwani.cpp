#include "baseline/alwani.h"

#include <algorithm>
#include <cmath>

#include "core/branch_and_bound.h"
#include "cost/cost_model.h"
#include "cost/group_timing.h"

namespace hetacc::baseline {

TileGeometry pyramid_geometry(const nn::Network& net, std::size_t first,
                              std::size_t last, int tile, bool reuse) {
  if (first > last || last >= net.size() || tile <= 0) {
    throw std::invalid_argument("pyramid_geometry: bad arguments");
  }
  TileGeometry g;
  g.tile = tile;
  const nn::Shape out = net[last].out;
  g.tiles = static_cast<long long>((out.h + tile - 1) / tile) *
            ((out.w + tile - 1) / tile);

  // Walk the pyramid backwards: each layer's input tile edge.
  std::vector<int> tile_out(last - first + 1, 0);
  int t = tile;
  for (std::size_t l = last + 1; l-- > first;) {
    tile_out[l - first] = t;
    t = (t - 1) * net[l].stride() + net[l].window();
    g.tile_in.insert(g.tile_in.begin(), t);
  }

  // Recompute overhead: every pyramid computes its full intermediate tiles,
  // so a layer produces tiles * tile_out^2 elements instead of H*W.
  double computed_ops = 0.0, minimal_ops = 0.0;
  long long buffer_words = 0;
  for (std::size_t l = first; l <= last; ++l) {
    const nn::Layer& layer = net[l];
    const double per_elem_ops =
        static_cast<double>(layer.ops()) /
        std::max<double>(1.0, static_cast<double>(layer.out.elems()));
    const double full = static_cast<double>(layer.ops());
    const double tiled = static_cast<double>(g.tiles) *
                         tile_out[l - first] * tile_out[l - first] *
                         layer.out.c * per_elem_ops;
    minimal_ops += full;
    computed_ops += reuse ? full : std::max(full, tiled);

    // Tile buffers: one input tile per layer plus, in reuse mode, the cached
    // overlap strips (horizontal seam across the full width, vertical seam
    // along the tile edge). Single-buffered; the tile-management overhead
    // below pays for the lost overlap.
    const int tin = g.tile_in[l - first];
    const int overlap = std::max(0, layer.window() - layer.stride());
    buffer_words += static_cast<long long>(tin) * tin * layer.in.c;
    if (reuse) {
      buffer_words += static_cast<long long>(overlap) * layer.in.w *
                      layer.in.c;
      buffer_words += static_cast<long long>(overlap) * tin * layer.in.c;
    }
  }
  g.recompute_factor = minimal_ops > 0 ? computed_ops / minimal_ops : 1.0;
  g.tile_buffer_words = buffer_words;
  return g;
}

namespace {

/// Conventional-only engine search: reuse Algorithm 2 with Winograd
/// candidates disabled and the BRAM consumed by tile buffers reserved.
std::optional<core::FusionGroup> conventional_engines(
    const nn::Network& net, std::size_t first, std::size_t last,
    const fpga::EngineModel& model, long long reserved_bram) {
  fpga::Device dev = model.device();
  dev.capacity.bram18k = std::max<long long>(0, dev.capacity.bram18k -
                                                    reserved_bram);
  fpga::EngineModelParams params = model.params();
  params.enable_winograd = false;
  params.include_line_buffer = false;  // tile buffers are accounted outside
  const fpga::EngineModel restricted(dev, params);
  auto r = core::fuse_group(net, first, last, restricted);
  if (!r) return std::nullopt;
  return std::move(r->group);
}

}  // namespace

std::optional<BaselineDesign> design_baseline(const nn::Network& net,
                                              std::size_t first,
                                              std::size_t last,
                                              const fpga::EngineModel& model,
                                              const TileFusionOptions& opt) {
  std::vector<int> tiles = opt.tile > 0 ? std::vector<int>{opt.tile}
                                        : opt.tile_sweep;
  std::optional<BaselineDesign> best;
  for (int tile : tiles) {
    if (tile > net[last].out.h || tile > net[last].out.w) continue;
    const TileGeometry geom = pyramid_geometry(net, first, last, tile,
                                               opt.reuse);
    const long long buffer_bram = fpga::bram18k_for(
        geom.tile_buffer_words, 16,
        static_cast<int>(2 * (last - first + 1)));
    auto group = conventional_engines(net, first, last, model, buffer_bram);
    if (!group) continue;

    BaselineDesign d;
    d.geom = geom;
    d.impls = group->impls;
    d.resources = group->resources();
    d.resources.bram18k += buffer_bram;

    // Tile-pipelined execution: stage latency set by the slowest layer
    // (including recompute overhead), transfer overlapped, plus per-tile
    // buffer-management overhead and pipeline fill.
    long long max_stage = 0;
    long long fill = 0;
    for (const auto& ipl : d.impls) {
      max_stage = std::max(max_stage, cost::scale_cycles(ipl.compute_cycles,
                                                         geom.recompute_factor));
      fill += ipl.fill_cycles;
    }
    d.transfer_bytes = cost::min_transfer_bytes(net, first, last,
                                                model.device().data_bytes);
    const long long transfer_cycles = cost::transfer_cycles(
        d.transfer_bytes, model.device().bytes_per_cycle());
    const long long mgmt = cost::scale_cycles(
        geom.tiles * static_cast<long long>(last - first + 1),
        opt.mgmt_cycles_per_tile);
    d.latency_cycles =
        cost::group_latency(max_stage, transfer_cycles, fill) + mgmt;
    double ops = 0.0;
    for (std::size_t l = first; l <= last; ++l) {
      ops += static_cast<double>(net[l].ops());
    }
    d.compute_ops = static_cast<long long>(ops * geom.recompute_factor);

    if (!best || d.latency_cycles < best->latency_cycles) best = std::move(d);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Functional tile executor (recompute mode).

namespace {

struct Region {
  int r0 = 0, r1 = 0, c0 = 0, c1 = 0;  ///< absolute, half-open, may exceed map
  [[nodiscard]] int h() const { return r1 - r0; }
  [[nodiscard]] int w() const { return c1 - c0; }
};

/// Region of the layer's input needed to produce output region `out`.
Region backward(const nn::Layer& l, const Region& out) {
  const int s = l.stride(), k = l.window(), p = l.padding();
  Region in;
  in.r0 = out.r0 * s - p;
  in.r1 = (out.r1 - 1) * s + k - p;
  in.c0 = out.c0 * s - p;
  in.c1 = (out.c1 - 1) * s + k - p;
  return in;
}

/// Buffer holding a region of a feature map in absolute coordinates.
/// Positions outside the real map are zero (= padding for the next layer).
struct RegionTensor {
  Region rg;
  int channels = 0;
  std::vector<float> data;  ///< [c][r - rg.r0][col - rg.c0]

  [[nodiscard]] float at(int c, int r, int col) const {
    if (r < rg.r0 || r >= rg.r1 || col < rg.c0 || col >= rg.c1) return 0.0f;
    return data[(static_cast<std::size_t>(c) * rg.h() + (r - rg.r0)) *
                    rg.w() +
                (col - rg.c0)];
  }
  [[nodiscard]] float& mut(int c, int r, int col) {
    return data[(static_cast<std::size_t>(c) * rg.h() + (r - rg.r0)) *
                    rg.w() +
                (col - rg.c0)];
  }
};

RegionTensor eval_layer_region(const nn::Layer& l, std::size_t index,
                               const nn::WeightStore& ws,
                               const RegionTensor& in, const Region& out_rg,
                               long long* ops) {
  RegionTensor out;
  out.rg = out_rg;
  out.channels = l.out.c;
  out.data.assign(
      static_cast<std::size_t>(l.out.c) * out_rg.h() * out_rg.w(), 0.0f);
  const int s = l.stride(), k = l.window(), p = l.padding();

  for (int r = std::max(out_rg.r0, 0); r < std::min(out_rg.r1, l.out.h); ++r) {
    for (int c0 = std::max(out_rg.c0, 0); c0 < std::min(out_rg.c1, l.out.w);
         ++c0) {
      switch (l.kind) {
        case nn::LayerKind::kConv: {
          const auto& w = ws.conv(index);
          const auto& cp = l.conv();
          for (int n = 0; n < l.out.c; ++n) {
            double acc = w.bias.empty() ? 0.0 : w.bias[n];
            for (int m = 0; m < l.in.c; ++m) {
              for (int u = 0; u < k; ++u) {
                const int h = r * s + u - p;
                if (h < 0 || h >= l.in.h) continue;
                for (int v = 0; v < k; ++v) {
                  const int col = c0 * s + v - p;
                  if (col < 0 || col >= l.in.w) continue;
                  acc += static_cast<double>(in.at(m, h, col)) *
                         w.filters.at(n, m, u, v);
                }
              }
            }
            float val = static_cast<float>(acc);
            if (cp.fused_relu) val = std::max(val, 0.0f);
            out.mut(n, r, c0) = val;
            if (ops) *ops += 2ll * l.in.c * k * k;
          }
          break;
        }
        case nn::LayerKind::kPool: {
          const auto& pp = l.pool();
          for (int n = 0; n < l.out.c; ++n) {
            float best = -std::numeric_limits<float>::infinity();
            float sum = 0.0f;
            int count = 0;
            for (int u = 0; u < k; ++u) {
              const int h = r * s + u - p;
              if (h < 0 || h >= l.in.h) continue;
              for (int v = 0; v < k; ++v) {
                const int col = c0 * s + v - p;
                if (col < 0 || col >= l.in.w) continue;
                const float x = in.at(n, h, col);
                best = std::max(best, x);
                sum += x;
                ++count;
              }
            }
            out.mut(n, r, c0) = (pp.method == nn::PoolMethod::kMax)
                                    ? best
                                    : (count ? sum / count : 0.0f);
            if (ops) *ops += k * k;
          }
          break;
        }
        case nn::LayerKind::kLrn: {
          const auto& lp = l.lrn();
          const int half = lp.local_size / 2;
          for (int n = 0; n < l.out.c; ++n) {
            float ss = 0.0f;
            for (int cc = std::max(0, n - half);
                 cc <= std::min(l.in.c - 1, n + half); ++cc) {
              const float x = in.at(cc, r, c0);
              ss += x * x;
            }
            const float denom = std::pow(
                lp.k + lp.alpha / static_cast<float>(lp.local_size) * ss,
                lp.beta);
            out.mut(n, r, c0) = in.at(n, r, c0) / denom;
            if (ops) *ops += 2ll * lp.local_size + 3;
          }
          break;
        }
        case nn::LayerKind::kRelu: {
          for (int n = 0; n < l.out.c; ++n) {
            out.mut(n, r, c0) = std::max(in.at(n, r, c0), 0.0f);
            if (ops) *ops += 1;
          }
          break;
        }
        default:
          throw std::invalid_argument("tile executor: unsupported layer");
      }
    }
  }
  return out;
}

}  // namespace

nn::Tensor tile_fused_execute(const nn::Network& net,
                              const nn::WeightStore& ws,
                              const nn::Tensor& input, std::size_t first,
                              std::size_t last, int tile,
                              long long* ops_performed) {
  if (first > last || last >= net.size() || tile <= 0) {
    throw std::invalid_argument("tile_fused_execute: bad arguments");
  }
  if (input.shape() != net[first].in) {
    throw std::invalid_argument("tile_fused_execute: input shape mismatch");
  }
  if (ops_performed) *ops_performed = 0;
  const nn::Shape out_shape = net[last].out;
  nn::Tensor out(out_shape);

  for (int tr = 0; tr < out_shape.h; tr += tile) {
    for (int tc = 0; tc < out_shape.w; tc += tile) {
      // Pyramid regions, last layer backwards to the input (Fig. 2(a)).
      std::vector<Region> out_rg(last - first + 1);
      Region rg{tr, std::min(tr + tile, out_shape.h), tc,
                std::min(tc + tile, out_shape.w)};
      for (std::size_t l = last + 1; l-- > first;) {
        out_rg[l - first] = rg;
        rg = backward(net[l], rg);
      }

      // Crop the input region (absolute coords; outside-map stays zero).
      RegionTensor cur;
      cur.rg = rg;
      cur.channels = net[first].in.c;
      cur.data.assign(
          static_cast<std::size_t>(cur.channels) * rg.h() * rg.w(), 0.0f);
      for (int c = 0; c < cur.channels; ++c) {
        for (int r = std::max(rg.r0, 0);
             r < std::min(rg.r1, net[first].in.h); ++r) {
          for (int col = std::max(rg.c0, 0);
               col < std::min(rg.c1, net[first].in.w); ++col) {
            cur.mut(c, r, col) = input.at(c, r, col);
          }
        }
      }

      // Forward through the pyramid.
      for (std::size_t l = first; l <= last; ++l) {
        cur = eval_layer_region(net[l], l, ws, cur, out_rg[l - first],
                                ops_performed);
      }

      for (int c = 0; c < out_shape.c; ++c) {
        for (int r = cur.rg.r0; r < cur.rg.r1; ++r) {
          for (int col = cur.rg.c0; col < cur.rg.c1; ++col) {
            out.at(c, r, col) = cur.at(c, r, col);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace hetacc::baseline
