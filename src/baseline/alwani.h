#pragma once
// Re-implementation of the comparison baseline: Alwani, Chen, Ferdman,
// Milder, "Fused-Layer CNN Accelerators" (MICRO 2016) — reference [1] of the
// paper. Tile-based pyramid fusion: the output map is partitioned into
// tiles; each tile's pyramid of intermediate tiles is evaluated on chip,
// with the overlap between adjacent pyramids either recomputed or cached in
// tile buffers. Conventional convolution only; no transfer/performance
// trade-off knob (the property §7.2 contrasts against).

#include <optional>

#include "fpga/engine_model.h"
#include "nn/network.h"
#include "nn/reference.h"
#include "nn/weights.h"

namespace hetacc::baseline {

struct TileFusionOptions {
  /// Output tile edge (at the last fused layer). 0 = sweep and pick best.
  int tile = 0;
  /// true = cache pyramid overlaps in tile buffers (Alwani's final design);
  /// false = recompute overlaps (their alternative).
  bool reuse = true;
  /// Cycles of tile-buffer management overhead per (layer, tile) —
  /// "complex operations are performed to update the tile-based buffers
  /// due to mutative boundary conditions" (paper §4.2).
  double mgmt_cycles_per_tile = 220.0;
  /// Candidate tile sizes for the sweep.
  std::vector<int> tile_sweep = {7, 8, 14, 16, 28, 32, 56};
};

struct TileGeometry {
  int tile = 0;                       ///< output tile edge
  std::vector<int> tile_in;           ///< required input tile edge per layer
  long long tiles = 0;                ///< number of tiles in the grid
  double recompute_factor = 1.0;      ///< computed elems / minimal elems
  long long tile_buffer_words = 0;    ///< intermediate tile storage (reuse)
};

/// Pyramid geometry for fusing layers [first, last] with output tile edge
/// `tile`: walks the dependence backwards (paper §4.1, Fig. 2(a)).
[[nodiscard]] TileGeometry pyramid_geometry(const nn::Network& net,
                                            std::size_t first,
                                            std::size_t last, int tile,
                                            bool reuse);

struct BaselineDesign {
  TileGeometry geom;
  std::vector<fpga::Implementation> impls;  ///< conventional engines
  fpga::ResourceVector resources;           ///< engines + tile buffers
  long long latency_cycles = 0;
  long long transfer_bytes = 0;
  long long compute_ops = 0;  ///< including recompute overhead
};

/// Builds the baseline accelerator for layers [first, last] on the device:
/// conventional engines balanced across layers, tile buffers, tile-pipelined
/// execution. Returns nullopt if nothing fits.
[[nodiscard]] std::optional<BaselineDesign> design_baseline(
    const nn::Network& net, std::size_t first, std::size_t last,
    const fpga::EngineModel& model, const TileFusionOptions& opt = {});

/// Functional tile executor (recompute mode): evaluates the fused stack
/// pyramid-by-pyramid, exactly as the baseline hardware would, and counts
/// the operations actually performed. Output must equal the reference
/// executor's — the correctness property of fusion (§4.1).
[[nodiscard]] nn::Tensor tile_fused_execute(const nn::Network& net,
                                            const nn::WeightStore& ws,
                                            const nn::Tensor& input,
                                            std::size_t first,
                                            std::size_t last, int tile,
                                            long long* ops_performed = nullptr);

}  // namespace hetacc::baseline
