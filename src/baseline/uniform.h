#pragma once
// Second comparison point: a Zhang-et-al.-style (FPGA'15, the paper's [27])
// single uniform convolution engine. One conventional PE array with one
// (tn, tm) unroll pair "serves all convolutional layers", processing the
// network layer by layer with every intermediate feature map spilled to
// DDR. The classic pre-fusion design the roofline analysis of §2.2 starts
// from.

#include <optional>

#include "fpga/engine_model.h"
#include "nn/network.h"

namespace hetacc::baseline {

struct UniformDesign {
  int tn = 1;
  int tm = 1;
  fpga::ResourceVector resources;
  long long latency_cycles = 0;   ///< end-to-end, all layers sequential
  long long transfer_bytes = 0;   ///< every boundary stored + loaded
  std::vector<long long> layer_cycles;  ///< per accelerated layer
};

/// Picks the uniform (tn, tm) that minimizes total latency under the device
/// resources (exhaustive over the unroll grid, like the paper's cited
/// design-space exploration). Non-conv layers run on small fixed engines.
[[nodiscard]] std::optional<UniformDesign> design_uniform(
    const nn::Network& net, const fpga::EngineModel& model);

}  // namespace hetacc::baseline
