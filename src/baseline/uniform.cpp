#include "baseline/uniform.h"

#include <algorithm>

#include "cost/cost_model.h"

namespace hetacc::baseline {

namespace {

/// Cycles for one conv layer on the shared (tn, tm) engine: the uniform
/// unrolls apply whether or not they divide the layer's channel counts
/// (ceil semantics, exactly like the per-layer model). No kernel-tap unroll
/// (tk = 1), so every K*K tap is a loop iteration.
long long conv_cycles(const nn::Layer& l, int tn, int tm, double eff) {
  const auto& p = l.conv();
  const long long base = cost::conv_cycles_conventional(
      l.in.c, l.out.c, p.kernel, tn, tm, 1,
      static_cast<long long>(l.out.h) * l.out.w);
  return cost::apply_efficiency(base, eff);
}

}  // namespace

std::optional<UniformDesign> design_uniform(const nn::Network& net,
                                            const fpga::EngineModel& model) {
  const fpga::Device& dev = model.device();
  const auto& params = model.params();

  // Layers the engine must serve.
  std::vector<const nn::Layer*> convs;
  std::vector<const nn::Layer*> others;
  for (std::size_t i = 1; i < net.size(); ++i) {
    if (net[i].kind == nn::LayerKind::kInput) continue;
    if (net[i].kind == nn::LayerKind::kConv) {
      convs.push_back(&net[i]);
    } else {
      others.push_back(&net[i]);
    }
  }
  if (convs.empty()) return std::nullopt;

  std::optional<UniformDesign> best;
  for (int tn = 1; tn <= 64; ++tn) {
    for (int tm = 1; tm <= 64; ++tm) {
      const long long dsp = static_cast<long long>(tn) * tm;
      if (dsp > dev.capacity.dsp) break;

      UniformDesign d;
      d.tn = tn;
      d.tm = tm;
      d.resources.dsp = dsp;
      d.resources.lut = static_cast<long long>(
          params.base_lut + params.lut_per_mult_conv * static_cast<double>(dsp));
      d.resources.ff = static_cast<long long>(
          params.base_ff + params.ff_per_mult_conv * static_cast<double>(dsp));

      // Double-buffered input/output tiles sized for the largest layer row
      // plus the largest layer's weight working set (tm output channels).
      long long buf_words = 0;
      long long wbuf_words = 0;
      for (const auto* l : convs) {
        buf_words = std::max<long long>(
            buf_words, 2ll * l->in.c * (l->window() + l->stride()) *
                           (l->in.w + 2 * l->padding()));
        wbuf_words = std::max<long long>(
            wbuf_words,
            2ll * tm * l->in.c * l->window() * l->window());
      }
      d.resources.bram18k =
          fpga::bram18k_for(buf_words, 16,
                            std::min(tn * 8, params.max_line_buffer_banks)) +
          fpga::bram18k_for(wbuf_words, 16,
                            std::min<long long>(dsp, params.max_weight_banks));
      if (!d.resources.fits_in(dev.capacity)) continue;

      // Sequential execution, DDR traffic per layer overlapped with compute.
      long long total = 0;
      d.transfer_bytes = 0;
      for (std::size_t i = 1; i < net.size(); ++i) {
        const nn::Layer& l = net[i];
        long long cycles = 0;
        if (l.kind == nn::LayerKind::kConv) {
          cycles = conv_cycles(l, tn, tm, params.compute_efficiency);
        } else {
          // Pool/LRN/ReLU pass over the map with modest lane counts.
          cycles = cost::lane_cycles(
              l.out.elems() * l.window() * l.window(), 16,
              params.compute_efficiency);
        }
        const long long io_bytes =
            l.in.bytes(dev.data_bytes) + l.out.bytes(dev.data_bytes) +
            l.weight_count() * dev.data_bytes;
        const long long io_cycles =
            cost::transfer_cycles(io_bytes, dev.bytes_per_cycle());
        total += std::max(cycles, io_cycles);
        d.transfer_bytes +=
            l.in.bytes(dev.data_bytes) + l.out.bytes(dev.data_bytes);
        d.layer_cycles.push_back(std::max(cycles, io_cycles));
      }
      d.latency_cycles = total;
      if (!best || d.latency_cycles < best->latency_cycles) best = std::move(d);
    }
  }
  return best;
}

}  // namespace hetacc::baseline
