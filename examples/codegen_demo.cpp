// Code-generation demo (paper §6 / Fig. 4): builds a heterogeneous two-group
// strategy by hand, emits the HLS project, prints an excerpt, and — if a
// host compiler is available — compiles and runs the generated C simulation,
// checking it against the reference executor.
//
//   ./codegen_demo [output-dir]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "codegen/generator.h"
#include "nn/reference.h"

using namespace hetacc;

int main(int argc, char** argv) {
  nn::Network net("demo");
  net.input({3, 24, 24});
  net.conv(8, 3, 1, 1, "conv_a");
  net.conv(8, 3, 1, 1, "conv_b");
  net.max_pool(2, 2, "pool");

  const fpga::EngineModel model(fpga::zc706());
  core::Strategy strategy = codegen::trivial_strategy(net, model);
  // Make it heterogeneous: second conv via Winograd F(4x4,3x3).
  strategy.groups[0].impls[1] =
      model.implement(net[2], {fpga::ConvAlgo::kWinograd, 1, 2, 1, 4});

  const nn::WeightStore ws = nn::WeightStore::deterministic(net, 3);
  const auto design = codegen::generate_design(net, strategy, ws, {});

  const std::string dir = argc > 1 ? argv[1] : "codegen_demo_out";
  codegen::write_design(design, dir);
  std::printf("wrote %s/{design.h, design.cpp, main.cpp, hls_compat.h}\n\n",
              dir.c_str());

  // Show the generated top function.
  std::istringstream src(design.source);
  std::string line;
  bool in_top = false;
  std::printf("generated DATAFLOW top function:\n");
  while (std::getline(src, line)) {
    if (line.find("void group0_top") != std::string::npos) in_top = true;
    if (in_top) {
      std::printf("  %s\n", line.c_str());
      if (line == "}") break;
    }
  }

  // C simulation, exactly what `vivado_hls csim_design` would run.
  if (std::system("c++ --version > /dev/null 2>&1") != 0) {
    std::printf("\nno host compiler found; skipping C simulation\n");
    return 0;
  }
  const std::string build = "c++ -std=c++17 -O1 -w -o " + dir + "/tb " + dir +
                            "/design.cpp " + dir + "/main.cpp -I " + dir;
  if (std::system(build.c_str()) != 0) {
    std::printf("generated code failed to compile\n");
    return 1;
  }
  nn::Tensor image(net[0].out);
  nn::fill_deterministic(image, 4);
  {
    std::ofstream f(dir + "/input.txt");
    f << codegen::tensor_to_stream_text(image);
  }
  const std::string run = "cd " + dir + " && ./tb input.txt output.txt";
  if (std::system(run.c_str()) != 0) {
    std::printf("testbench failed\n");
    return 1;
  }
  std::ifstream out(dir + "/output.txt");
  std::stringstream ss;
  ss << out.rdbuf();
  const nn::Tensor got =
      codegen::tensor_from_stream_text(ss.str(), net[3].out);
  const nn::Tensor golden = nn::run_network(net, ws, image);
  std::printf("\nC simulation vs reference executor: max error %.2e\n",
              got.max_abs_diff(golden));
  return 0;
}
