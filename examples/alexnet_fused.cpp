// AlexNet end-to-end through the paper's tool-flow (§7.3): Caffe prototxt in,
// optimized heterogeneous fusion strategy out, per-layer table printed, and a
// functional fixed-point validation of the fused pipeline on the first two
// fusible layers.
//
//   ./alexnet_fused

#include <cstdio>

#include "arch/pipeline.h"
#include "caffe/importer.h"
#include "nn/model_zoo.h"
#include "nn/reference.h"
#include "toolflow/toolflow.h"

using namespace hetacc;

int main() {
  // The bundled deploy prototxt is byte-for-byte importable Caffe syntax.
  toolflow::ToolflowOptions opt;
  opt.generate_code = false;
  const auto result =
      toolflow::run_toolflow(caffe::alexnet_prototxt(), fpga::zc706(), opt);
  std::printf("%s\n", result.summary().c_str());

  std::printf("%-10s %-14s %12s %8s\n", "layer", "algorithm", "parallelism",
              "DSP");
  for (const auto& g : result.optimization.strategy.groups) {
    for (std::size_t k = 0; k < g.impls.size(); ++k) {
      const nn::Layer& l = result.accel_net[g.first + k];
      const auto& ipl = g.impls[k];
      std::printf("%-10s %-14s %12d %8lld\n", l.name.c_str(),
                  std::string(fpga::to_string(ipl.cfg.algo)).c_str(),
                  ipl.cfg.parallelism(l.window()), ipl.res.dsp);
    }
  }

  // Fixed-point functional spot check: conv1 + norm1 + pool1 streamed with
  // 16-bit quantization at every layer boundary, compared to float golden.
  const nn::Network head = result.accel_net.slice(0, 3, "alex-head");
  const nn::WeightStore ws = nn::WeightStore::deterministic(head, 11);
  std::vector<arch::LayerChoice> ch(3);
  for (auto& c : ch) c.mode = arch::NumericMode{12, 11};
  arch::FusionPipeline pipe(head, ws, ch);
  nn::Tensor image(head[0].out);
  nn::fill_deterministic(image, 12);
  const nn::Tensor fx = pipe.run(image);
  const nn::Tensor golden = nn::run_network(head, ws, image);
  std::printf("\n16-bit fused head vs float reference: max error %.4f "
              "(16-bit fixed datapath, paper §7.1)\n",
              fx.max_abs_diff(golden));
  return 0;
}
