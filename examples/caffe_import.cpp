// Caffe front-end demo: import a deploy prototxt (a bundled VGG-E or a file
// given on the command line), print the parsed topology, and run the
// optimizer on its accelerated portion for a chosen device.
//
//   ./caffe_import [deploy.prototxt] [--device zc706|vc707] [--budget-mb N]

#include <cstdio>
#include <cstring>
#include <string>

#include "caffe/importer.h"
#include "toolflow/toolflow.h"

using namespace hetacc;

int main(int argc, char** argv) {
  std::string path;
  fpga::Device dev = fpga::zc706();
  long long budget_mb = 0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--device") && i + 1 < argc) {
      dev = std::strcmp(argv[++i], "vc707") ? fpga::zc706() : fpga::vc707();
    } else if (!std::strcmp(argv[i], "--budget-mb") && i + 1 < argc) {
      budget_mb = std::atoll(argv[++i]);
    } else {
      path = argv[i];
    }
  }

  nn::Network net;
  try {
    net = path.empty() ? caffe::import_prototxt(caffe::vgg_e_prototxt())
                       : caffe::import_prototxt_file(path);
  } catch (const std::exception& e) {
    std::printf("import failed: %s\n", e.what());
    return 1;
  }
  std::printf("%s\n", net.summary().c_str());

  toolflow::ToolflowOptions opt;
  opt.generate_code = false;
  if (budget_mb > 0) opt.transfer_budget_bytes = budget_mb * 1024 * 1024;
  try {
    const auto result = toolflow::run_toolflow(net, dev, opt);
    std::printf("%s\n", result.summary().c_str());
    std::printf("%s\n",
                result.optimization.strategy.describe(result.accel_net)
                    .c_str());
  } catch (const std::exception& e) {
    std::printf("tool-flow failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
