// Quickstart: build a small CNN, let the optimizer pick fusion groups and
// per-layer algorithms for a ZC706, validate the resulting architecture
// functionally against the reference executor, and emit HLS source.
//
//   ./quickstart [output-dir]

#include <cstdio>

#include "arch/pipeline.h"
#include "codegen/generator.h"
#include "core/dp_optimizer.h"
#include "core/report.h"
#include "nn/model_zoo.h"
#include "nn/reference.h"

using namespace hetacc;

int main(int argc, char** argv) {
  // 1. Describe the network (or import a Caffe prototxt, see caffe_import).
  nn::Network net("quickstart");
  net.input({3, 64, 64});
  net.conv(16, 3, 1, 1, "conv1");
  net.conv(16, 3, 1, 1, "conv2");
  net.max_pool(2, 2, "pool1");
  net.conv(32, 3, 1, 1, "conv3");
  std::printf("%s\n", net.summary().c_str());

  // 2. Optimize for the target FPGA under a feature-map transfer budget.
  const fpga::Device dev = fpga::zc706();
  const fpga::EngineModel model(dev);
  core::OptimizerOptions oo;
  oo.transfer_budget_bytes = 2 * 1024 * 1024;
  const core::OptimizeResult result = core::optimize(net, model, oo);
  if (!result.feasible) {
    std::printf("no feasible strategy under the budget\n");
    return 1;
  }
  std::printf("%s\n", result.strategy.describe(net).c_str());
  const core::StrategyReport rep = core::make_report(result.strategy, net, dev);
  std::printf("latency %.3f ms, %.1f GOPS, %.2f W, %.1f GOPS/W\n\n",
              rep.latency_ms, rep.effective_gops, rep.power.total(),
              rep.energy_efficiency_gops_per_w);

  // 3. Validate the chosen architecture functionally: stream an image
  //    through line-buffer engines using the optimizer's algorithm choices.
  const nn::WeightStore ws = nn::WeightStore::deterministic(net, 1);
  std::vector<arch::LayerChoice> choices;
  for (const auto& g : result.strategy.groups) {
    for (const auto& ipl : g.impls) {
      choices.push_back({ipl.cfg.algo, ipl.cfg.wino_m, {}});
    }
  }
  arch::FusionPipeline pipe(net, ws, choices);
  nn::Tensor image(net[0].out);
  nn::fill_deterministic(image, 2);
  const nn::Tensor streamed = pipe.run(image);
  const nn::Tensor golden = nn::run_network(net, ws, image);
  std::printf("streamed-vs-reference max error: %.2e\n",
              streamed.max_abs_diff(golden));

  // 4. Generate the HLS project for the strategy.
  const auto design =
      codegen::generate_design(net, result.strategy, ws, {});
  const std::string dir = argc > 1 ? argv[1] : "quickstart_design";
  codegen::write_design(design, dir);
  std::printf("HLS project written to %s/ (design.h, design.cpp, main.cpp, "
              "hls_compat.h)\n",
              dir.c_str());
  return 0;
}
