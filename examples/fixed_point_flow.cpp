// Fixed-point deployment flow: calibrate Q formats from sample activations
// (quant::calibrate), validate the 16-bit streaming pipeline against the
// float reference, and emit a fixed-point HLS design whose C simulation is
// run if a host compiler is available.
//
//   ./fixed_point_flow [output-dir]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "arch/pipeline.h"
#include "codegen/generator.h"
#include "nn/model_zoo.h"
#include "nn/reference.h"
#include "quant/calibration.h"

using namespace hetacc;

int main(int argc, char** argv) {
  // A conv/pool/conv stack with Winograd on the middle conv.
  nn::Network net("fixed-flow");
  net.input({3, 28, 28});
  net.conv(8, 3, 1, 1, "conv1");
  net.conv(8, 3, 1, 1, "conv2");
  net.max_pool(2, 2, "pool1");
  net.conv(16, 3, 1, 1, "conv3");
  const nn::WeightStore ws = nn::WeightStore::deterministic(net, 21);

  // 1. Calibrate per-layer Q formats from sample images.
  std::vector<nn::Tensor> samples;
  for (std::uint32_t seed = 30; seed < 34; ++seed) {
    nn::Tensor t(net[0].out);
    nn::fill_deterministic(t, seed);
    samples.push_back(std::move(t));
  }
  const quant::Calibration cal = quant::calibrate(net, ws, samples, 1);
  std::printf("calibrated Q formats (16-bit, guard 1 bit):\n");
  for (const auto& lr : cal.layers) {
    std::printf("  %-8s in Q%-2d (|x|<=%.3f)  out Q%-2d (|y|<=%.3f)\n",
                lr.name.c_str(), lr.in_frac, lr.max_abs_in, lr.out_frac,
                lr.max_abs_out);
  }

  // 2. Validate the fixed 16-bit streaming pipeline against float.
  std::vector<arch::LayerChoice> ch(net.size() - 1);
  const auto modes = cal.modes();
  for (std::size_t i = 0; i < ch.size(); ++i) ch[i].mode = modes[i];
  ch[1].algo = fpga::ConvAlgo::kWinograd;
  arch::FusionPipeline pipe(net, ws, ch);
  nn::Tensor probe(net[0].out);
  nn::fill_deterministic(probe, 99);
  const nn::Tensor golden = nn::run_network(net, ws, probe);
  std::printf("\n16-bit streamed pipeline vs float reference: max error %.4f\n",
              pipe.run(probe).max_abs_diff(golden));

  // 3. Generate the fixed-point HLS design and C-simulate it.
  codegen::CodegenOptions opt;
  opt.fixed_point = true;
  for (std::size_t i = 0; i < cal.layers.size(); ++i) {
    const int in = i == 0 ? cal.layers[0].in_frac
                          : opt.layer_fracs.back().second;
    opt.layer_fracs.emplace_back(in, cal.layers[i].out_frac);
  }
  const fpga::EngineModel model(fpga::zc706());
  core::Strategy strategy = codegen::trivial_strategy(net, model);
  strategy.groups[0].impls[1] =
      model.implement(net[2], {fpga::ConvAlgo::kWinograd, 1, 2, 1, 4});
  const auto design = codegen::generate_design(net, strategy, ws, opt);
  const std::string dir = argc > 1 ? argv[1] : "fixed_point_design";
  codegen::write_design(design, dir);
  std::printf("fixed-point HLS project written to %s/\n", dir.c_str());

  if (std::system("c++ --version > /dev/null 2>&1") != 0) {
    std::printf("no host compiler; skipping C simulation\n");
    return 0;
  }
  const std::string build = "c++ -std=c++17 -O1 -w -o " + dir + "/tb " + dir +
                            "/design.cpp " + dir + "/main.cpp -I " + dir;
  if (std::system(build.c_str()) != 0) {
    std::printf("generated code failed to compile\n");
    return 1;
  }
  {
    std::ofstream f(dir + "/input.txt");
    f << codegen::tensor_to_stream_text(probe);
  }
  if (std::system(("cd " + dir + " && ./tb input.txt output.txt").c_str()) !=
      0) {
    std::printf("testbench failed\n");
    return 1;
  }
  std::ifstream out(dir + "/output.txt");
  std::stringstream ss;
  ss << out.rdbuf();
  const nn::Tensor got = codegen::tensor_from_stream_text(
      ss.str(), net[net.size() - 1].out);
  std::printf("fixed-point C simulation vs float reference: max error %.4f\n",
              got.max_abs_diff(golden));
  return 0;
}
