// VGG-E design-space explorer: sweeps the feature-map transfer budget over
// the network the paper evaluates in §7.2 (optionally the full accelerated
// VGG-E, not just the 7-layer head) and prints the latency / transfer /
// resource frontier, comparing against the tile-based baseline [1].
//
//   ./vgg_explorer [--full] [--device zc706|vc707]

#include <cstdio>
#include <cstring>

#include "baseline/alwani.h"
#include "core/dp_optimizer.h"
#include "core/report.h"
#include "nn/model_zoo.h"

using namespace hetacc;

int main(int argc, char** argv) {
  bool full = false;
  fpga::Device dev = fpga::zc706();
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--full")) full = true;
    if (!std::strcmp(argv[i], "--device") && i + 1 < argc) {
      dev = std::strcmp(argv[i + 1], "vc707") ? fpga::zc706() : fpga::vc707();
    }
  }
  const nn::Network net =
      full ? nn::vgg_e().accelerated_portion() : nn::vgg_e_head();
  std::printf("%s on %s (%.1f GB/s, %lld DSP)\n\n", net.name().c_str(),
              dev.name.c_str(), dev.bandwidth_bytes_per_s / 1e9,
              dev.capacity.dsp);

  const fpga::EngineModel model(dev);

  std::printf("%8s %8s %14s %10s %10s %8s %8s\n", "T (MB)", "groups",
              "latency(cyc)", "ms", "GOPS", "DSP", "BRAM");
  for (long long mb : {2, 3, 4, 6, 8, 12, 16, 24, 34, 48, 64}) {
    core::OptimizerOptions oo;
    oo.transfer_budget_bytes = mb * 1024 * 1024;
    const auto r = core::optimize(net, model, oo);
    if (!r.feasible) {
      std::printf("%8lld infeasible (below minimal fused transfer)\n", mb);
      continue;
    }
    const auto rep = core::make_report(r.strategy, net, dev);
    std::printf("%8lld %8zu %14lld %10.2f %10.1f %8lld %8lld\n", mb,
                r.strategy.groups.size(), rep.latency_cycles, rep.latency_ms,
                rep.effective_gops, rep.peak_resources.dsp,
                rep.peak_resources.bram18k);
  }

  if (!full) {
    const auto base = baseline::design_baseline(net, 1, net.size() - 1, model);
    if (base) {
      std::printf("\ntile-based baseline [1]: tile=%d, %.2f ms, %.2f MB "
                  "transfer, resources %s\n",
                  base->geom.tile,
                  base->latency_cycles / dev.frequency_hz * 1e3,
                  static_cast<double>(base->transfer_bytes) / (1024.0 * 1024.0),
                  base->resources.str().c_str());
    }
  }
  return 0;
}
