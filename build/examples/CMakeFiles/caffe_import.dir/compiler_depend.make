# Empty compiler generated dependencies file for caffe_import.
# This may be replaced when dependencies are built.
