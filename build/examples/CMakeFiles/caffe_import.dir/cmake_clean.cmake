file(REMOVE_RECURSE
  "CMakeFiles/caffe_import.dir/caffe_import.cpp.o"
  "CMakeFiles/caffe_import.dir/caffe_import.cpp.o.d"
  "caffe_import"
  "caffe_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caffe_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
