# Empty dependencies file for vgg_explorer.
# This may be replaced when dependencies are built.
