file(REMOVE_RECURSE
  "CMakeFiles/vgg_explorer.dir/vgg_explorer.cpp.o"
  "CMakeFiles/vgg_explorer.dir/vgg_explorer.cpp.o.d"
  "vgg_explorer"
  "vgg_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgg_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
