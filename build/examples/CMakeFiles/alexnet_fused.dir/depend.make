# Empty dependencies file for alexnet_fused.
# This may be replaced when dependencies are built.
