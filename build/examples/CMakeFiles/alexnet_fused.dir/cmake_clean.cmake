file(REMOVE_RECURSE
  "CMakeFiles/alexnet_fused.dir/alexnet_fused.cpp.o"
  "CMakeFiles/alexnet_fused.dir/alexnet_fused.cpp.o.d"
  "alexnet_fused"
  "alexnet_fused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alexnet_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
