file(REMOVE_RECURSE
  "CMakeFiles/fixed_point_flow.dir/fixed_point_flow.cpp.o"
  "CMakeFiles/fixed_point_flow.dir/fixed_point_flow.cpp.o.d"
  "fixed_point_flow"
  "fixed_point_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixed_point_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
