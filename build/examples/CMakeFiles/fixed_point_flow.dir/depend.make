# Empty dependencies file for fixed_point_flow.
# This may be replaced when dependencies are built.
