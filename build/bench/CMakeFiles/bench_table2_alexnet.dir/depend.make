# Empty dependencies file for bench_table2_alexnet.
# This may be replaced when dependencies are built.
