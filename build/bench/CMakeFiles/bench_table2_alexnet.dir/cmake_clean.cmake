file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_alexnet.dir/bench_table2_alexnet.cpp.o"
  "CMakeFiles/bench_table2_alexnet.dir/bench_table2_alexnet.cpp.o.d"
  "bench_table2_alexnet"
  "bench_table2_alexnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_alexnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
