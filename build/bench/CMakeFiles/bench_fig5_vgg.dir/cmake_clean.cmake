file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_vgg.dir/bench_fig5_vgg.cpp.o"
  "CMakeFiles/bench_fig5_vgg.dir/bench_fig5_vgg.cpp.o.d"
  "bench_fig5_vgg"
  "bench_fig5_vgg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_vgg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
