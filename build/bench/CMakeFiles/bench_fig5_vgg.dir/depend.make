# Empty dependencies file for bench_fig5_vgg.
# This may be replaced when dependencies are built.
