file(REMOVE_RECURSE
  "CMakeFiles/bench_numerics.dir/bench_numerics.cpp.o"
  "CMakeFiles/bench_numerics.dir/bench_numerics.cpp.o.d"
  "bench_numerics"
  "bench_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
