# Empty dependencies file for bench_table1_vgg.
# This may be replaced when dependencies are built.
