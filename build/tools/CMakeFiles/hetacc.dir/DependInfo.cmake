
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/hetacc.cpp" "tools/CMakeFiles/hetacc.dir/hetacc.cpp.o" "gcc" "tools/CMakeFiles/hetacc.dir/hetacc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hetacc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/hetacc_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/hetacc_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/caffe/CMakeFiles/hetacc_caffe.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/hetacc_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hetacc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/hetacc_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hetacc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hetacc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/hetacc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/toolflow/CMakeFiles/hetacc_toolflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
