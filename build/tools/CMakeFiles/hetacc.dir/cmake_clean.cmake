file(REMOVE_RECURSE
  "CMakeFiles/hetacc.dir/hetacc.cpp.o"
  "CMakeFiles/hetacc.dir/hetacc.cpp.o.d"
  "hetacc"
  "hetacc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetacc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
