# Empty dependencies file for hetacc.
# This may be replaced when dependencies are built.
