# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_algo[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
