file(REMOVE_RECURSE
  "CMakeFiles/test_flow.dir/test_baseline.cpp.o"
  "CMakeFiles/test_flow.dir/test_baseline.cpp.o.d"
  "CMakeFiles/test_flow.dir/test_codegen.cpp.o"
  "CMakeFiles/test_flow.dir/test_codegen.cpp.o.d"
  "CMakeFiles/test_flow.dir/test_codegen_fixed.cpp.o"
  "CMakeFiles/test_flow.dir/test_codegen_fixed.cpp.o.d"
  "CMakeFiles/test_flow.dir/test_end_to_end.cpp.o"
  "CMakeFiles/test_flow.dir/test_end_to_end.cpp.o.d"
  "CMakeFiles/test_flow.dir/test_hls_report.cpp.o"
  "CMakeFiles/test_flow.dir/test_hls_report.cpp.o.d"
  "CMakeFiles/test_flow.dir/test_robustness.cpp.o"
  "CMakeFiles/test_flow.dir/test_robustness.cpp.o.d"
  "CMakeFiles/test_flow.dir/test_sweep.cpp.o"
  "CMakeFiles/test_flow.dir/test_sweep.cpp.o.d"
  "CMakeFiles/test_flow.dir/test_toolflow.cpp.o"
  "CMakeFiles/test_flow.dir/test_toolflow.cpp.o.d"
  "CMakeFiles/test_flow.dir/test_uniform_baseline.cpp.o"
  "CMakeFiles/test_flow.dir/test_uniform_baseline.cpp.o.d"
  "test_flow"
  "test_flow.pdb"
  "test_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
