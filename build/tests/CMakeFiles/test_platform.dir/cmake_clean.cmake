file(REMOVE_RECURSE
  "CMakeFiles/test_platform.dir/test_caffe.cpp.o"
  "CMakeFiles/test_platform.dir/test_caffe.cpp.o.d"
  "CMakeFiles/test_platform.dir/test_fpga.cpp.o"
  "CMakeFiles/test_platform.dir/test_fpga.cpp.o.d"
  "CMakeFiles/test_platform.dir/test_roofline.cpp.o"
  "CMakeFiles/test_platform.dir/test_roofline.cpp.o.d"
  "CMakeFiles/test_platform.dir/test_stride2_model.cpp.o"
  "CMakeFiles/test_platform.dir/test_stride2_model.cpp.o.d"
  "test_platform"
  "test_platform.pdb"
  "test_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
