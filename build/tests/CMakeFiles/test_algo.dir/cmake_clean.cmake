file(REMOVE_RECURSE
  "CMakeFiles/test_algo.dir/test_fft.cpp.o"
  "CMakeFiles/test_algo.dir/test_fft.cpp.o.d"
  "CMakeFiles/test_algo.dir/test_winograd.cpp.o"
  "CMakeFiles/test_algo.dir/test_winograd.cpp.o.d"
  "CMakeFiles/test_algo.dir/test_winograd_stride2.cpp.o"
  "CMakeFiles/test_algo.dir/test_winograd_stride2.cpp.o.d"
  "test_algo"
  "test_algo.pdb"
  "test_algo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
