file(REMOVE_RECURSE
  "CMakeFiles/hetacc_core.dir/branch_and_bound.cpp.o"
  "CMakeFiles/hetacc_core.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/hetacc_core.dir/dp_optimizer.cpp.o"
  "CMakeFiles/hetacc_core.dir/dp_optimizer.cpp.o.d"
  "CMakeFiles/hetacc_core.dir/report.cpp.o"
  "CMakeFiles/hetacc_core.dir/report.cpp.o.d"
  "CMakeFiles/hetacc_core.dir/strategy.cpp.o"
  "CMakeFiles/hetacc_core.dir/strategy.cpp.o.d"
  "CMakeFiles/hetacc_core.dir/strategy_io.cpp.o"
  "CMakeFiles/hetacc_core.dir/strategy_io.cpp.o.d"
  "libhetacc_core.a"
  "libhetacc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetacc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
