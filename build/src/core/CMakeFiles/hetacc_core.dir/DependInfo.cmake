
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/branch_and_bound.cpp" "src/core/CMakeFiles/hetacc_core.dir/branch_and_bound.cpp.o" "gcc" "src/core/CMakeFiles/hetacc_core.dir/branch_and_bound.cpp.o.d"
  "/root/repo/src/core/dp_optimizer.cpp" "src/core/CMakeFiles/hetacc_core.dir/dp_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/hetacc_core.dir/dp_optimizer.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/hetacc_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/hetacc_core.dir/report.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/core/CMakeFiles/hetacc_core.dir/strategy.cpp.o" "gcc" "src/core/CMakeFiles/hetacc_core.dir/strategy.cpp.o.d"
  "/root/repo/src/core/strategy_io.cpp" "src/core/CMakeFiles/hetacc_core.dir/strategy_io.cpp.o" "gcc" "src/core/CMakeFiles/hetacc_core.dir/strategy_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fpga/CMakeFiles/hetacc_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hetacc_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
