# Empty compiler generated dependencies file for hetacc_core.
# This may be replaced when dependencies are built.
