file(REMOVE_RECURSE
  "libhetacc_core.a"
)
