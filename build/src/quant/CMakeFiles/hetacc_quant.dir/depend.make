# Empty dependencies file for hetacc_quant.
# This may be replaced when dependencies are built.
