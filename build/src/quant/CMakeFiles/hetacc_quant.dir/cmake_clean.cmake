file(REMOVE_RECURSE
  "CMakeFiles/hetacc_quant.dir/calibration.cpp.o"
  "CMakeFiles/hetacc_quant.dir/calibration.cpp.o.d"
  "libhetacc_quant.a"
  "libhetacc_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetacc_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
