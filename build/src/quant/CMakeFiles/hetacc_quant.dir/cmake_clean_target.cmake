file(REMOVE_RECURSE
  "libhetacc_quant.a"
)
