# Empty compiler generated dependencies file for hetacc_fixed.
# This may be replaced when dependencies are built.
