file(REMOVE_RECURSE
  "CMakeFiles/hetacc_fixed.dir/fixed16.cpp.o"
  "CMakeFiles/hetacc_fixed.dir/fixed16.cpp.o.d"
  "libhetacc_fixed.a"
  "libhetacc_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetacc_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
