file(REMOVE_RECURSE
  "libhetacc_fixed.a"
)
