
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/hetacc_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/hetacc_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/model_zoo.cpp" "src/nn/CMakeFiles/hetacc_nn.dir/model_zoo.cpp.o" "gcc" "src/nn/CMakeFiles/hetacc_nn.dir/model_zoo.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/hetacc_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/hetacc_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/reference.cpp" "src/nn/CMakeFiles/hetacc_nn.dir/reference.cpp.o" "gcc" "src/nn/CMakeFiles/hetacc_nn.dir/reference.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/hetacc_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/hetacc_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/weights.cpp" "src/nn/CMakeFiles/hetacc_nn.dir/weights.cpp.o" "gcc" "src/nn/CMakeFiles/hetacc_nn.dir/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
