file(REMOVE_RECURSE
  "libhetacc_nn.a"
)
