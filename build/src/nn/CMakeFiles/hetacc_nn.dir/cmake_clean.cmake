file(REMOVE_RECURSE
  "CMakeFiles/hetacc_nn.dir/layer.cpp.o"
  "CMakeFiles/hetacc_nn.dir/layer.cpp.o.d"
  "CMakeFiles/hetacc_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/hetacc_nn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/hetacc_nn.dir/network.cpp.o"
  "CMakeFiles/hetacc_nn.dir/network.cpp.o.d"
  "CMakeFiles/hetacc_nn.dir/reference.cpp.o"
  "CMakeFiles/hetacc_nn.dir/reference.cpp.o.d"
  "CMakeFiles/hetacc_nn.dir/tensor.cpp.o"
  "CMakeFiles/hetacc_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/hetacc_nn.dir/weights.cpp.o"
  "CMakeFiles/hetacc_nn.dir/weights.cpp.o.d"
  "libhetacc_nn.a"
  "libhetacc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetacc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
