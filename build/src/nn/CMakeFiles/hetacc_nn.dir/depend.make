# Empty dependencies file for hetacc_nn.
# This may be replaced when dependencies are built.
