# Empty dependencies file for hetacc_fpga.
# This may be replaced when dependencies are built.
