file(REMOVE_RECURSE
  "CMakeFiles/hetacc_fpga.dir/device.cpp.o"
  "CMakeFiles/hetacc_fpga.dir/device.cpp.o.d"
  "CMakeFiles/hetacc_fpga.dir/engine_model.cpp.o"
  "CMakeFiles/hetacc_fpga.dir/engine_model.cpp.o.d"
  "CMakeFiles/hetacc_fpga.dir/power.cpp.o"
  "CMakeFiles/hetacc_fpga.dir/power.cpp.o.d"
  "libhetacc_fpga.a"
  "libhetacc_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetacc_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
