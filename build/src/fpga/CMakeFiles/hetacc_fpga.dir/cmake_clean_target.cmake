file(REMOVE_RECURSE
  "libhetacc_fpga.a"
)
