# Empty dependencies file for hetacc_arch.
# This may be replaced when dependencies are built.
