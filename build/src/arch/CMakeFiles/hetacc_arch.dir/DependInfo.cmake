
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/ddr_trace.cpp" "src/arch/CMakeFiles/hetacc_arch.dir/ddr_trace.cpp.o" "gcc" "src/arch/CMakeFiles/hetacc_arch.dir/ddr_trace.cpp.o.d"
  "/root/repo/src/arch/engines.cpp" "src/arch/CMakeFiles/hetacc_arch.dir/engines.cpp.o" "gcc" "src/arch/CMakeFiles/hetacc_arch.dir/engines.cpp.o.d"
  "/root/repo/src/arch/event_sim.cpp" "src/arch/CMakeFiles/hetacc_arch.dir/event_sim.cpp.o" "gcc" "src/arch/CMakeFiles/hetacc_arch.dir/event_sim.cpp.o.d"
  "/root/repo/src/arch/line_buffer.cpp" "src/arch/CMakeFiles/hetacc_arch.dir/line_buffer.cpp.o" "gcc" "src/arch/CMakeFiles/hetacc_arch.dir/line_buffer.cpp.o.d"
  "/root/repo/src/arch/pipeline.cpp" "src/arch/CMakeFiles/hetacc_arch.dir/pipeline.cpp.o" "gcc" "src/arch/CMakeFiles/hetacc_arch.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hetacc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/hetacc_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/hetacc_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/hetacc_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hetacc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
