file(REMOVE_RECURSE
  "CMakeFiles/hetacc_arch.dir/ddr_trace.cpp.o"
  "CMakeFiles/hetacc_arch.dir/ddr_trace.cpp.o.d"
  "CMakeFiles/hetacc_arch.dir/engines.cpp.o"
  "CMakeFiles/hetacc_arch.dir/engines.cpp.o.d"
  "CMakeFiles/hetacc_arch.dir/event_sim.cpp.o"
  "CMakeFiles/hetacc_arch.dir/event_sim.cpp.o.d"
  "CMakeFiles/hetacc_arch.dir/line_buffer.cpp.o"
  "CMakeFiles/hetacc_arch.dir/line_buffer.cpp.o.d"
  "CMakeFiles/hetacc_arch.dir/pipeline.cpp.o"
  "CMakeFiles/hetacc_arch.dir/pipeline.cpp.o.d"
  "libhetacc_arch.a"
  "libhetacc_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetacc_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
