file(REMOVE_RECURSE
  "libhetacc_arch.a"
)
