# Empty dependencies file for hetacc_caffe.
# This may be replaced when dependencies are built.
