file(REMOVE_RECURSE
  "libhetacc_caffe.a"
)
