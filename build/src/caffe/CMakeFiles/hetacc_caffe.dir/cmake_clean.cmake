file(REMOVE_RECURSE
  "CMakeFiles/hetacc_caffe.dir/importer.cpp.o"
  "CMakeFiles/hetacc_caffe.dir/importer.cpp.o.d"
  "CMakeFiles/hetacc_caffe.dir/prototxt.cpp.o"
  "CMakeFiles/hetacc_caffe.dir/prototxt.cpp.o.d"
  "libhetacc_caffe.a"
  "libhetacc_caffe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetacc_caffe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
