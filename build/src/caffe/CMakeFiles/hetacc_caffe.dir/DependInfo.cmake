
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/caffe/importer.cpp" "src/caffe/CMakeFiles/hetacc_caffe.dir/importer.cpp.o" "gcc" "src/caffe/CMakeFiles/hetacc_caffe.dir/importer.cpp.o.d"
  "/root/repo/src/caffe/prototxt.cpp" "src/caffe/CMakeFiles/hetacc_caffe.dir/prototxt.cpp.o" "gcc" "src/caffe/CMakeFiles/hetacc_caffe.dir/prototxt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hetacc_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
