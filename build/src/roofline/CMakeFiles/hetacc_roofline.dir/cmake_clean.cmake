file(REMOVE_RECURSE
  "CMakeFiles/hetacc_roofline.dir/roofline.cpp.o"
  "CMakeFiles/hetacc_roofline.dir/roofline.cpp.o.d"
  "libhetacc_roofline.a"
  "libhetacc_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetacc_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
