# Empty compiler generated dependencies file for hetacc_roofline.
# This may be replaced when dependencies are built.
