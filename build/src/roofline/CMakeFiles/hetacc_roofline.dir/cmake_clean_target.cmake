file(REMOVE_RECURSE
  "libhetacc_roofline.a"
)
