# Empty compiler generated dependencies file for hetacc_toolflow.
# This may be replaced when dependencies are built.
