file(REMOVE_RECURSE
  "libhetacc_toolflow.a"
)
