file(REMOVE_RECURSE
  "CMakeFiles/hetacc_toolflow.dir/sweep.cpp.o"
  "CMakeFiles/hetacc_toolflow.dir/sweep.cpp.o.d"
  "CMakeFiles/hetacc_toolflow.dir/toolflow.cpp.o"
  "CMakeFiles/hetacc_toolflow.dir/toolflow.cpp.o.d"
  "libhetacc_toolflow.a"
  "libhetacc_toolflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetacc_toolflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
