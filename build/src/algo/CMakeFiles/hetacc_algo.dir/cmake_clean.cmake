file(REMOVE_RECURSE
  "CMakeFiles/hetacc_algo.dir/conv_variants.cpp.o"
  "CMakeFiles/hetacc_algo.dir/conv_variants.cpp.o.d"
  "CMakeFiles/hetacc_algo.dir/fft.cpp.o"
  "CMakeFiles/hetacc_algo.dir/fft.cpp.o.d"
  "CMakeFiles/hetacc_algo.dir/matrix.cpp.o"
  "CMakeFiles/hetacc_algo.dir/matrix.cpp.o.d"
  "CMakeFiles/hetacc_algo.dir/winograd_conv.cpp.o"
  "CMakeFiles/hetacc_algo.dir/winograd_conv.cpp.o.d"
  "CMakeFiles/hetacc_algo.dir/winograd_stride2.cpp.o"
  "CMakeFiles/hetacc_algo.dir/winograd_stride2.cpp.o.d"
  "CMakeFiles/hetacc_algo.dir/winograd_transform.cpp.o"
  "CMakeFiles/hetacc_algo.dir/winograd_transform.cpp.o.d"
  "libhetacc_algo.a"
  "libhetacc_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetacc_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
