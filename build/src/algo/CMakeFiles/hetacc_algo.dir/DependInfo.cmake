
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/conv_variants.cpp" "src/algo/CMakeFiles/hetacc_algo.dir/conv_variants.cpp.o" "gcc" "src/algo/CMakeFiles/hetacc_algo.dir/conv_variants.cpp.o.d"
  "/root/repo/src/algo/fft.cpp" "src/algo/CMakeFiles/hetacc_algo.dir/fft.cpp.o" "gcc" "src/algo/CMakeFiles/hetacc_algo.dir/fft.cpp.o.d"
  "/root/repo/src/algo/matrix.cpp" "src/algo/CMakeFiles/hetacc_algo.dir/matrix.cpp.o" "gcc" "src/algo/CMakeFiles/hetacc_algo.dir/matrix.cpp.o.d"
  "/root/repo/src/algo/winograd_conv.cpp" "src/algo/CMakeFiles/hetacc_algo.dir/winograd_conv.cpp.o" "gcc" "src/algo/CMakeFiles/hetacc_algo.dir/winograd_conv.cpp.o.d"
  "/root/repo/src/algo/winograd_stride2.cpp" "src/algo/CMakeFiles/hetacc_algo.dir/winograd_stride2.cpp.o" "gcc" "src/algo/CMakeFiles/hetacc_algo.dir/winograd_stride2.cpp.o.d"
  "/root/repo/src/algo/winograd_transform.cpp" "src/algo/CMakeFiles/hetacc_algo.dir/winograd_transform.cpp.o" "gcc" "src/algo/CMakeFiles/hetacc_algo.dir/winograd_transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hetacc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/hetacc_fixed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
