file(REMOVE_RECURSE
  "libhetacc_algo.a"
)
