# Empty compiler generated dependencies file for hetacc_algo.
# This may be replaced when dependencies are built.
