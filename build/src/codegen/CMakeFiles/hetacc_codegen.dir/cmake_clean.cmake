file(REMOVE_RECURSE
  "CMakeFiles/hetacc_codegen.dir/generator.cpp.o"
  "CMakeFiles/hetacc_codegen.dir/generator.cpp.o.d"
  "CMakeFiles/hetacc_codegen.dir/hls_report.cpp.o"
  "CMakeFiles/hetacc_codegen.dir/hls_report.cpp.o.d"
  "libhetacc_codegen.a"
  "libhetacc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetacc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
