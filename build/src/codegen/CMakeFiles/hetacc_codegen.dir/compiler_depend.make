# Empty compiler generated dependencies file for hetacc_codegen.
# This may be replaced when dependencies are built.
