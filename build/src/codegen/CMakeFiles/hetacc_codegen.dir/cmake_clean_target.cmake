file(REMOVE_RECURSE
  "libhetacc_codegen.a"
)
