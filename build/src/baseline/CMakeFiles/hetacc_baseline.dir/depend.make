# Empty dependencies file for hetacc_baseline.
# This may be replaced when dependencies are built.
