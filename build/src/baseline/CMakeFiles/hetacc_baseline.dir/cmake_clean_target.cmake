file(REMOVE_RECURSE
  "libhetacc_baseline.a"
)
