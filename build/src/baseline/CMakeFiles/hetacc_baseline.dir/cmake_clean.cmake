file(REMOVE_RECURSE
  "CMakeFiles/hetacc_baseline.dir/alwani.cpp.o"
  "CMakeFiles/hetacc_baseline.dir/alwani.cpp.o.d"
  "CMakeFiles/hetacc_baseline.dir/uniform.cpp.o"
  "CMakeFiles/hetacc_baseline.dir/uniform.cpp.o.d"
  "libhetacc_baseline.a"
  "libhetacc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetacc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
