
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/alwani.cpp" "src/baseline/CMakeFiles/hetacc_baseline.dir/alwani.cpp.o" "gcc" "src/baseline/CMakeFiles/hetacc_baseline.dir/alwani.cpp.o.d"
  "/root/repo/src/baseline/uniform.cpp" "src/baseline/CMakeFiles/hetacc_baseline.dir/uniform.cpp.o" "gcc" "src/baseline/CMakeFiles/hetacc_baseline.dir/uniform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hetacc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/hetacc_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hetacc_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
